//! The decide → deploy → measure loop used by every experiment.

use omniboost_hw::{
    Board, DesSimulator, EvalCacheStats, HwError, Mapping, Scheduler, ThroughputModel,
    ThroughputReport, Workload,
};
use omniboost_telemetry::Telemetry;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Cumulative decision-memo statistics of a [`Runtime`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    /// Decisions answered from the memo without re-running the scheduler.
    pub hits: u64,
    /// Decisions that ran the scheduler (and populated the memo).
    pub misses: u64,
}

/// The rescheduling context of an online decision: the mapping the board
/// was running before the workload changed, and how the new workload's
/// DNNs pair up with it. Passed to [`Runtime::run_rescheduled`] so the
/// outcome can report **migration cost** — the stability axis of online
/// serving, next to throughput and decision latency.
#[derive(Debug, Clone)]
pub struct PreviousDeployment<'a> {
    /// The mapping deployed before this decision.
    pub mapping: &'a Mapping,
    /// `pairing[i] = Some(j)`: DNN `i` of the new workload is DNN `j` of
    /// the previous mapping (same job, carried across the event); `None`
    /// marks a newly arrived DNN with nothing to migrate.
    pub pairing: &'a [Option<usize>],
}

/// Result of running one scheduler on one workload.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The mapping the scheduler decided.
    pub mapping: Mapping,
    /// Measured throughput of that mapping on the board.
    pub report: ThroughputReport,
    /// Wall-clock decision latency (§V-B's comparison axis). Memo hits
    /// report the (near-zero) lookup time, which is the point.
    pub decision_time: Duration,
    /// Whether this decision was answered from the memo.
    pub memo_hit: bool,
    /// Snapshot of the runtime's cumulative memo counters after this run.
    pub memo: MemoStats,
    /// Snapshot of the scheduler's cross-decision evaluation-cache
    /// counters after this run (`None` for cache-less schedulers) — the
    /// second cache layer next to the decision memo: the memo reuses
    /// whole decisions, the eval cache reuses individual estimator
    /// reports inside fresh decisions.
    pub eval_cache: Option<EvalCacheStats>,
    /// Layers whose device changed relative to the previous deployment
    /// (`None` when the run had no rescheduling context) — reported by
    /// [`Runtime::run_rescheduled`] so serving metrics can show the
    /// latency/stability frontier.
    pub migrated_layers: Option<usize>,
}

/// Drives schedulers against a board: asks for a decision, "deploys" it
/// on the simulator and measures the achieved throughput.
///
/// With [`Runtime::with_memo`], repeat queries are answered from a
/// **decision memo** keyed on `(scheduler name, workload composition)`:
/// a workload mix seen before maps to the cached mapping without
/// re-running the search — the serving-path behaviour a production
/// scheduler needs under recurring traffic. The memo is **opt-in**
/// because the key cannot see scheduler *configuration* or internal
/// randomness: experiment harnesses that sweep configs under one
/// scheduler name (the ablation binary) or rely on fresh randomness per
/// call (`RandomSplit` in the Fig. 1 study) would be silently pinned to
/// their first decision.
///
/// ```no_run
/// use omniboost::Runtime;
/// use omniboost::baselines::GpuOnly;
/// use omniboost_hw::{Board, Workload};
/// use omniboost_models::ModelId;
///
/// let runtime = Runtime::new(Board::hikey970());
/// let w = Workload::from_ids([ModelId::AlexNet]);
/// let outcome = runtime.run(&mut GpuOnly::new(), &w)?;
/// println!("{:.1} inf/s in {:?}", outcome.report.average, outcome.decision_time);
/// # Ok::<(), omniboost_hw::HwError>(())
/// ```
#[derive(Debug)]
pub struct Runtime {
    board: Board,
    simulator: DesSimulator,
    memo_enabled: bool,
    memo: Mutex<HashMap<MemoKey, Mapping>>,
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
    telemetry: Telemetry,
}

/// How one decision interacts with the runtime's decision memo.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemoMode {
    /// Normal serving: answer from the memo, populate it on a miss.
    ReadWrite,
    /// Periodic drift repair: decide fresh, overwrite the entry.
    BypassAndOverwrite,
    /// Proposal scoring: decide fresh, leave the memo alone entirely.
    Untouched,
}

/// Memo key: scheduler identity, the scheduler's per-decision context
/// salt ([`Scheduler::memo_salt`] — the SLO floor vector for the online
/// scheduler, so a floored mix never replays a floorless mapping and
/// vice versa; `0` for context-free schedulers keeps pre-salt keys
/// intact), plus workload composition. Each DNN contributes its name,
/// layer count and resident weight bytes — name alone is not enough
/// because [`omniboost_models::DnnModelBuilder`] allows distinct
/// architectures under one name. Order is preserved (workloads are
/// mixes, but [`Workload`] keeps order and so do we, which is
/// conservative: permutations simply miss).
type MemoKey = (String, u64, Vec<(String, usize, u64)>);

impl Clone for Runtime {
    fn clone(&self) -> Self {
        Self {
            board: self.board.clone(),
            simulator: self.simulator.clone(),
            memo_enabled: self.memo_enabled,
            memo: Mutex::new(self.memo.lock().clone()),
            memo_hits: AtomicU64::new(self.memo_hits.load(Ordering::Relaxed)),
            memo_misses: AtomicU64::new(self.memo_misses.load(Ordering::Relaxed)),
            telemetry: self.telemetry.clone(),
        }
    }
}

impl Runtime {
    /// Creates a runtime over a board with default simulator fidelity.
    /// The decision memo starts disabled; see [`Runtime::with_memo`].
    pub fn new(board: Board) -> Self {
        let simulator = board.simulator();
        Self {
            board,
            simulator,
            memo_enabled: false,
            memo: Mutex::new(HashMap::new()),
            memo_hits: AtomicU64::new(0),
            memo_misses: AtomicU64::new(0),
            telemetry: Telemetry::noop(),
        }
    }

    /// Attaches a telemetry handle: decision phases (memo lookup, warm
    /// and cold search, estimator forward) emit scoped spans and memo
    /// hit/miss counters through it. The default is the no-op handle —
    /// telemetry observes decisions and never influences them, so
    /// replay digests are identical either way.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The attached telemetry handle (no-op unless
    /// [`Runtime::set_telemetry`] was called).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Enables the decision memo: repeat `(scheduler name, workload)`
    /// queries reuse the first decision instead of re-searching. Only
    /// sound when every scheduler name maps to one fixed, deterministic
    /// configuration for the runtime's lifetime (the serving scenario) —
    /// see the type-level docs for the harnesses where it is not.
    #[must_use]
    pub fn with_memo(mut self) -> Self {
        self.memo_enabled = true;
        self
    }

    /// The board.
    pub fn board(&self) -> &Board {
        &self.board
    }

    /// The measurement simulator.
    pub fn simulator(&self) -> &DesSimulator {
        &self.simulator
    }

    /// Cumulative decision-memo counters.
    pub fn memo_stats(&self) -> MemoStats {
        MemoStats {
            hits: self.memo_hits.load(Ordering::Relaxed),
            misses: self.memo_misses.load(Ordering::Relaxed),
        }
    }

    /// Drops all memoized decisions (counters are preserved). Call after
    /// retraining or reconfiguring a scheduler whose name stays the same.
    pub fn clear_memo(&self) {
        self.memo.lock().clear();
    }

    fn memo_key(scheduler: &dyn Scheduler, workload: &Workload) -> MemoKey {
        (
            scheduler.name().to_owned(),
            scheduler.memo_salt(),
            workload
                .dnns()
                .iter()
                .map(|d| (d.name().to_owned(), d.num_layers(), d.total_weight_bytes()))
                .collect(),
        )
    }

    /// Decides, deploys and measures.
    ///
    /// # Errors
    ///
    /// Propagates scheduler and measurement [`HwError`]s (inadmissible
    /// workloads, malformed mappings).
    pub fn run(
        &self,
        scheduler: &mut dyn Scheduler,
        workload: &Workload,
    ) -> Result<RunOutcome, HwError> {
        self.run_rescheduled(scheduler, workload, None)
    }

    /// [`Runtime::run`] with online-rescheduling context: the decision
    /// proceeds identically (memo first, scheduler on a miss), and the
    /// outcome additionally reports the **migration cost** against the
    /// previous deployment — the number of layers whose device changed
    /// across the event, with newly arrived DNNs contributing zero.
    ///
    /// # Errors
    ///
    /// Propagates scheduler and measurement [`HwError`]s.
    pub fn run_rescheduled(
        &self,
        scheduler: &mut dyn Scheduler,
        workload: &Workload,
        previous: Option<PreviousDeployment<'_>>,
    ) -> Result<RunOutcome, HwError> {
        self.run_inner(scheduler, workload, previous, MemoMode::ReadWrite)
    }

    /// [`Runtime::run_rescheduled`] with the decision memo **bypassed
    /// and overwritten**: the scheduler decides unconditionally and its
    /// fresh mapping replaces any memoized entry for the mix. Online
    /// serving uses this for periodic drift repair — without it, a mix
    /// memoized from an early (possibly warm-started) decision would
    /// replay that mapping forever, and the scheduler's cold-refresh
    /// cadence could never reach it.
    ///
    /// # Errors
    ///
    /// Propagates scheduler and measurement [`HwError`]s.
    pub fn run_refreshed(
        &self,
        scheduler: &mut dyn Scheduler,
        workload: &Workload,
        previous: Option<PreviousDeployment<'_>>,
    ) -> Result<RunOutcome, HwError> {
        self.run_inner(scheduler, workload, previous, MemoMode::BypassAndOverwrite)
    }

    /// [`Runtime::run_rescheduled`] for **proposal scoring**: the
    /// decision memo is neither read nor written. Fleet-level
    /// rebalancing uses this to price a hypothetical job move — the
    /// donor board minus the job, the receiver board plus it — under
    /// warm-started rescheduling before deciding whether the move
    /// happens at all. A memoized mapping must not answer (it could
    /// predate the drift the move is meant to repair), and a **rejected**
    /// proposal must leave no trace: the memo only ever holds decisions
    /// that were actually deployed, so an accepted proposal is installed
    /// by the caller via the slot state it already holds, and the next
    /// real event on either board re-decides (warm) from there.
    ///
    /// # Errors
    ///
    /// Propagates scheduler and measurement [`HwError`]s.
    pub fn run_speculative(
        &self,
        scheduler: &mut dyn Scheduler,
        workload: &Workload,
        previous: Option<PreviousDeployment<'_>>,
    ) -> Result<RunOutcome, HwError> {
        self.run_inner(scheduler, workload, previous, MemoMode::Untouched)
    }

    fn run_inner(
        &self,
        scheduler: &mut dyn Scheduler,
        workload: &Workload,
        previous: Option<PreviousDeployment<'_>>,
        memo_mode: MemoMode,
    ) -> Result<RunOutcome, HwError> {
        let key = (self.memo_enabled && memo_mode != MemoMode::Untouched)
            .then(|| Self::memo_key(scheduler, workload));
        let start = Instant::now();
        let memoized = if memo_mode == MemoMode::ReadWrite {
            let _span = self.telemetry.span("core.decide.memo_lookup");
            key.as_ref().and_then(|k| self.memo.lock().get(k).cloned())
        } else {
            None
        };
        let memo_hit = memoized.is_some();
        let mapping = match memoized {
            Some(mapping) => {
                self.memo_hits.fetch_add(1, Ordering::Relaxed);
                self.telemetry.incr("core.decide.memo_hits", 1);
                mapping
            }
            None => {
                self.memo_misses.fetch_add(1, Ordering::Relaxed);
                self.telemetry.incr("core.decide.memo_misses", 1);
                // Rescheduling context means the scheduler can warm-start
                // from the previous deployment; without it the search is
                // cold — the two span names the latency comparison needs.
                let search_span = self.telemetry.span(if previous.is_some() {
                    "core.decide.search.warm"
                } else {
                    "core.decide.search.cold"
                });
                let mapping = scheduler.decide(&self.board, workload)?;
                drop(search_span);
                if let Some(k) = key {
                    self.memo.lock().insert(k, mapping.clone());
                }
                mapping
            }
        };
        let decision_time = start.elapsed();
        let migrated_layers = previous
            .as_ref()
            .map(|p| mapping.migrated_layers(p.mapping, p.pairing));
        let report = {
            let _span = self.telemetry.span("core.estimator.forward");
            self.simulator.evaluate(workload, &mapping)?
        };
        Ok(RunOutcome {
            mapping,
            report,
            decision_time,
            memo_hit,
            memo: self.memo_stats(),
            eval_cache: scheduler.eval_cache_stats(),
            migrated_layers,
        })
    }

    /// Measures an explicit mapping (no scheduler).
    ///
    /// # Errors
    ///
    /// Propagates measurement [`HwError`]s.
    pub fn measure(
        &self,
        workload: &Workload,
        mapping: &Mapping,
    ) -> Result<ThroughputReport, HwError> {
        self.simulator.evaluate(workload, mapping)
    }

    /// Measures many mappings of one workload in a single batched call
    /// (the simulator parallelizes across worker threads).
    ///
    /// Element `i` equals `self.measure(workload, &mappings[i])`.
    pub fn measure_batch(
        &self,
        workload: &Workload,
        mappings: &[Mapping],
    ) -> Vec<Result<ThroughputReport, HwError>> {
        self.simulator.evaluate_batch(workload, mappings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omniboost_baselines::{GpuOnly, RandomSplit};
    use omniboost_hw::Device;
    use omniboost_models::ModelId;

    #[test]
    fn run_measures_the_decided_mapping() {
        let rt = Runtime::new(Board::hikey970());
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::SqueezeNet]);
        let outcome = rt.run(&mut GpuOnly::new(), &w).unwrap();
        assert!(outcome.report.average > 0.0);
        assert_eq!(outcome.mapping.devices_used(), vec![Device::Gpu]);
        let direct = rt.measure(&w, &outcome.mapping).unwrap();
        assert_eq!(direct.per_dnn, outcome.report.per_dnn);
    }

    #[test]
    fn inadmissible_workloads_propagate() {
        let rt = Runtime::new(Board::hikey970());
        let w = Workload::from_ids(vec![ModelId::AlexNet; 6]);
        assert!(matches!(
            rt.run(&mut GpuOnly::new(), &w),
            Err(HwError::Unresponsive { .. })
        ));
    }

    #[test]
    fn repeat_queries_hit_the_memo() {
        let rt = Runtime::new(Board::hikey970()).with_memo();
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNet]);
        // RandomSplit would decide a *different* mapping on a repeat call;
        // the memo must pin the first decision.
        let mut sched = RandomSplit::new(7);
        let first = rt.run(&mut sched, &w).unwrap();
        assert!(!first.memo_hit);
        assert_eq!(first.memo, MemoStats { hits: 0, misses: 1 });
        let second = rt.run(&mut sched, &w).unwrap();
        assert!(second.memo_hit);
        assert_eq!(second.mapping, first.mapping);
        assert_eq!(second.memo, MemoStats { hits: 1, misses: 1 });
        // A different workload misses again.
        let w2 = Workload::from_ids([ModelId::SqueezeNet]);
        let third = rt.run(&mut sched, &w2).unwrap();
        assert!(!third.memo_hit);
        assert_eq!(rt.memo_stats(), MemoStats { hits: 1, misses: 2 });
    }

    #[test]
    fn memo_is_scoped_per_memo_salt() {
        /// A scheduler whose decisions depend on armed context (like the
        /// online scheduler's SLO floors), surfaced through the salt.
        struct Salted {
            inner: RandomSplit,
            salt: u64,
        }
        impl Scheduler for Salted {
            fn name(&self) -> &str {
                "salted"
            }
            fn decide(&mut self, board: &Board, workload: &Workload) -> Result<Mapping, HwError> {
                self.inner.decide(board, workload)
            }
            fn memo_salt(&self) -> u64 {
                self.salt
            }
        }
        let rt = Runtime::new(Board::hikey970()).with_memo();
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNet]);
        let mut sched = Salted {
            inner: RandomSplit::new(11),
            salt: 0,
        };
        let plain = rt.run(&mut sched, &w).unwrap();
        // A different salt (different armed floors) must miss: the
        // floorless mapping would otherwise replay under the floors.
        sched.salt = 0xF100D;
        let floored = rt.run(&mut sched, &w).unwrap();
        assert!(!floored.memo_hit, "salt change must invalidate the memo");
        assert_ne!(floored.mapping, plain.mapping);
        // Each salt now hits its own entry.
        assert!(rt.run(&mut sched, &w).unwrap().memo_hit);
        sched.salt = 0;
        let replay = rt.run(&mut sched, &w).unwrap();
        assert!(replay.memo_hit);
        assert_eq!(replay.mapping, plain.mapping);
    }

    #[test]
    fn memo_is_scoped_per_scheduler_name() {
        let rt = Runtime::new(Board::hikey970()).with_memo();
        let w = Workload::from_ids([ModelId::AlexNet]);
        rt.run(&mut GpuOnly::new(), &w).unwrap();
        // Different scheduler, same workload: no cross-scheduler reuse.
        let out = rt.run(&mut RandomSplit::new(3), &w).unwrap();
        assert!(!out.memo_hit);
        assert_eq!(rt.memo_stats().misses, 2);
    }

    #[test]
    fn memo_off_by_default_and_clear_memo_drops_entries() {
        // Default runtime: no reuse, but misses are still counted.
        let rt = Runtime::new(Board::hikey970());
        let w = Workload::from_ids([ModelId::AlexNet]);
        let mut sched = GpuOnly::new();
        assert!(!rt.run(&mut sched, &w).unwrap().memo_hit);
        assert!(!rt.run(&mut sched, &w).unwrap().memo_hit);
        assert_eq!(rt.memo_stats(), MemoStats { hits: 0, misses: 2 });

        let rt = Runtime::new(Board::hikey970()).with_memo();
        rt.run(&mut sched, &w).unwrap();
        rt.clear_memo();
        assert!(!rt.run(&mut sched, &w).unwrap().memo_hit);
    }

    #[test]
    fn cacheless_schedulers_report_no_eval_cache() {
        let rt = Runtime::new(Board::hikey970());
        let w = Workload::from_ids([ModelId::AlexNet]);
        let outcome = rt.run(&mut GpuOnly::new(), &w).unwrap();
        assert_eq!(outcome.eval_cache, None);
    }

    #[test]
    fn run_refreshed_bypasses_and_overwrites_the_memo() {
        let rt = Runtime::new(Board::hikey970()).with_memo();
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNet]);
        // RandomSplit decides differently on every real call, which makes
        // memo pinning (and its removal) observable.
        let mut sched = RandomSplit::new(21);
        let first = rt.run(&mut sched, &w).unwrap();
        assert!(rt.run(&mut sched, &w).unwrap().memo_hit);

        let refreshed = rt.run_refreshed(&mut sched, &w, None).unwrap();
        assert!(!refreshed.memo_hit, "refresh must bypass the memo");
        assert_ne!(refreshed.mapping, first.mapping, "fresh decision");
        // The fresh mapping replaced the memo entry.
        let after = rt.run(&mut sched, &w).unwrap();
        assert!(after.memo_hit);
        assert_eq!(after.mapping, refreshed.mapping);
    }

    #[test]
    fn run_speculative_leaves_the_memo_untouched() {
        let rt = Runtime::new(Board::hikey970()).with_memo();
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNet]);
        let mut sched = RandomSplit::new(5);
        let deployed = rt.run(&mut sched, &w).unwrap();

        // Speculation must not read the memo (RandomSplit would answer
        // differently on a real call, so a memo hit is detectable)...
        let spec = rt.run_speculative(&mut sched, &w, None).unwrap();
        assert!(!spec.memo_hit, "speculation read the memo");
        assert_ne!(spec.mapping, deployed.mapping, "fresh decision");
        // ...and must not write it either: the deployed decision stays.
        let after = rt.run(&mut sched, &w).unwrap();
        assert!(after.memo_hit);
        assert_eq!(after.mapping, deployed.mapping);

        // A speculative query for a mix never deployed leaves no entry.
        let w2 = Workload::from_ids([ModelId::SqueezeNet]);
        rt.run_speculative(&mut sched, &w2, None).unwrap();
        let first_real = rt.run(&mut sched, &w2).unwrap();
        assert!(!first_real.memo_hit, "speculation populated the memo");
    }

    #[test]
    fn run_rescheduled_reports_migration_cost() {
        let rt = Runtime::new(Board::hikey970());
        let w2 = Workload::from_ids([ModelId::AlexNet, ModelId::SqueezeNet]);
        let mut sched = GpuOnly::new();
        let first = rt.run(&mut sched, &w2).unwrap();
        assert_eq!(first.migrated_layers, None, "no context, no metric");

        // SqueezeNet departs; AlexNet (new index 0) carries over from
        // previous index 0 and GpuOnly re-maps it identically.
        let w1 = Workload::from_ids([ModelId::AlexNet]);
        let outcome = rt
            .run_rescheduled(
                &mut sched,
                &w1,
                Some(PreviousDeployment {
                    mapping: &first.mapping,
                    pairing: &[Some(0)],
                }),
            )
            .unwrap();
        assert_eq!(outcome.migrated_layers, Some(0));

        // A scheduler that moves everything to another device migrates
        // every carried layer.
        let mut little = Mapping::all_on(&w1, Device::Gpu);
        for l in 0..11 {
            little.assign(0, l, Device::LittleCpu);
        }
        assert_eq!(
            little.migrated_layers(&first.mapping, &[Some(0)]),
            11,
            "helper agrees with the hook's arithmetic"
        );
    }

    #[test]
    fn measure_batch_matches_scalar_measure() {
        let rt = Runtime::new(Board::hikey970());
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::SqueezeNet]);
        let mappings = vec![
            Mapping::all_on(&w, Device::Gpu),
            Mapping::all_on(&w, Device::BigCpu),
            Mapping::all_on(&w, Device::LittleCpu),
        ];
        let batch = rt.measure_batch(&w, &mappings);
        for (m, b) in mappings.iter().zip(batch) {
            assert_eq!(rt.measure(&w, m).unwrap(), b.unwrap());
        }
    }
}
