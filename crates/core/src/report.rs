//! Human-readable comparison tables for experiment output.

use std::fmt::Write as _;
use std::time::Duration;

/// One scheduler's result on one mix, normalized against the baseline
/// (the convention of Figs. 1 and 5).
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Scheduler name.
    pub scheduler: String,
    /// Absolute average throughput (inferences/s).
    pub average: f64,
    /// Throughput normalized to the GPU-only baseline.
    pub normalized: f64,
    /// Decision latency.
    pub decision_time: Duration,
}

/// Formats comparison rows as an aligned text table.
///
/// ```
/// use omniboost::{format_comparison, ComparisonRow};
/// use std::time::Duration;
///
/// let rows = vec![ComparisonRow {
///     scheduler: "baseline".into(),
///     average: 4.2,
///     normalized: 1.0,
///     decision_time: Duration::from_millis(1),
/// }];
/// let table = format_comparison("mix-1", &rows);
/// assert!(table.contains("baseline"));
/// assert!(table.contains("1.00x"));
/// ```
pub fn format_comparison(title: &str, rows: &[ComparisonRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== {title} ===");
    let _ = writeln!(
        out,
        "{:<18} {:>12} {:>10} {:>12}",
        "scheduler", "avg inf/s", "vs base", "decision"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<18} {:>12.3} {:>9.2}x {:>12}",
            r.scheduler,
            r.average,
            r.normalized,
            format_duration(r.decision_time)
        );
    }
    out
}

/// Compact duration formatting (µs/ms/s).
fn format_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{:.2}s", us as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_contains_all_rows() {
        let rows = vec![
            ComparisonRow {
                scheduler: "baseline".into(),
                average: 4.0,
                normalized: 1.0,
                decision_time: Duration::from_micros(10),
            },
            ComparisonRow {
                scheduler: "omniboost".into(),
                average: 18.4,
                normalized: 4.6,
                decision_time: Duration::from_secs(30),
            },
        ];
        let t = format_comparison("mix-2 (4 DNNs)", &rows);
        assert!(t.contains("mix-2"));
        assert!(t.contains("omniboost"));
        assert!(t.contains("4.60x"));
        assert!(t.contains("30.00s"));
    }

    #[test]
    fn duration_units_scale() {
        assert_eq!(format_duration(Duration::from_micros(5)), "5us");
        assert_eq!(format_duration(Duration::from_millis(12)), "12.0ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00s");
    }
}
