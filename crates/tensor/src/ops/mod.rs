//! Neural-network building blocks.

pub mod activation;
pub mod conv;
pub mod flatten;
pub mod linear;
pub mod pool;
pub mod residual;
