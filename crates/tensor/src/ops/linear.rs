//! Fully-connected layer on the shared [`crate::gemm`] core.

use crate::gemm::{gemm_nn, gemm_nt, gemm_tn, GemmScratch};
use crate::init::kaiming_uniform;
use crate::module::{Module, Param};
use crate::tensor::Tensor;

/// `y = x W^T + b` over batched 2-D inputs `[N, in]`.
///
/// ```
/// use omniboost_tensor::{Linear, Module, Tensor};
///
/// let mut l = Linear::new(3, 2, 7);
/// let y = l.forward(&Tensor::randn(&[4, 3], 1));
/// assert_eq!(y.shape(), &[4, 2]);
/// ```
pub struct Linear {
    in_features: usize,
    out_features: usize,
    /// `[out, in]`.
    weight: Param,
    /// `[out]`.
    bias: Param,
    cached_input: Option<Tensor>,
    training: bool,
    gemm_backward: bool,
    scratch: GemmScratch,
}

impl Linear {
    /// Creates a Kaiming-initialized layer.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        Self {
            in_features,
            out_features,
            weight: Param::new(kaiming_uniform(
                &[out_features, in_features],
                in_features,
                seed,
            )),
            bias: Param::new(Tensor::zeros(&[out_features])),
            cached_input: None,
            training: true,
            gemm_backward: true,
            scratch: GemmScratch::default(),
        }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Whether a gradient cache from the last training-mode forward is
    /// held.
    pub fn has_grad_cache(&self) -> bool {
        self.cached_input.is_some()
    }

    /// The seed's direct backward loops — the A/B reference for
    /// [`Module::set_gemm_backward`].
    fn backward_direct(&mut self, n: usize, x: &[f32], g: &[f32]) -> Tensor {
        let w = self.weight.value.data().to_vec();
        // dW[o][i] += sum_n g[n][o] * x[n][i];  db[o] += sum_n g[n][o].
        {
            let dw = self.weight.grad.data_mut();
            for s in 0..n {
                for o in 0..self.out_features {
                    let gv = g[s * self.out_features + o];
                    if gv == 0.0 {
                        continue;
                    }
                    let xrow = &x[s * self.in_features..(s + 1) * self.in_features];
                    let dwrow = &mut dw[o * self.in_features..(o + 1) * self.in_features];
                    for (d, xv) in dwrow.iter_mut().zip(xrow) {
                        *d += gv * xv;
                    }
                }
            }
        }
        {
            let db = self.bias.grad.data_mut();
            for s in 0..n {
                for o in 0..self.out_features {
                    db[o] += g[s * self.out_features + o];
                }
            }
        }
        // dx[n][i] = sum_o g[n][o] * W[o][i].
        let mut grad_input = Tensor::zeros(&[n, self.in_features]);
        let gi = grad_input.data_mut();
        for s in 0..n {
            for o in 0..self.out_features {
                let gv = g[s * self.out_features + o];
                if gv == 0.0 {
                    continue;
                }
                let wrow = &w[o * self.in_features..(o + 1) * self.in_features];
                let girow = &mut gi[s * self.in_features..(s + 1) * self.in_features];
                for (d, wv) in girow.iter_mut().zip(wrow) {
                    *d += gv * wv;
                }
            }
        }
        grad_input
    }

    /// GEMM-shaped backward: `dW += Gᵀ·X`, `db += column-sums of G`,
    /// `dX = G·W` — the same three-pass structure as the convolution.
    fn backward_gemm(&mut self, n: usize, x: &[f32], g: &[f32]) -> Tensor {
        {
            let db = self.bias.grad.data_mut();
            for s in 0..n {
                for o in 0..self.out_features {
                    db[o] += g[s * self.out_features + o];
                }
            }
        }
        gemm_tn(
            self.out_features,
            n,
            self.in_features,
            g,
            x,
            self.in_features,
            self.weight.grad.data_mut(),
        );
        let mut grad_input = Tensor::zeros(&[n, self.in_features]);
        gemm_nn(
            n,
            self.out_features,
            self.in_features,
            g,
            self.weight.value.data(),
            grad_input.data_mut(),
            &mut self.scratch,
        );
        grad_input
    }
}

impl Module for Linear {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape().len(), 2, "Linear expects [N, in] input");
        assert_eq!(input.shape()[1], self.in_features, "input width mismatch");
        let n = input.shape()[0];
        let mut out = Tensor::zeros(&[n, self.out_features]);
        let b = self.bias.value.data();
        let od = out.data_mut();
        for row in od.chunks_exact_mut(self.out_features) {
            row.copy_from_slice(b);
        }
        // y += X · Wᵀ (dot-product shape: W stored `[out, in]`).
        gemm_nt(
            n,
            self.in_features,
            self.out_features,
            input.data(),
            self.weight.value.data(),
            od,
        );
        if self.training {
            self.cached_input = Some(input.clone());
        } else {
            self.cached_input = None;
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("backward called before forward");
        let n = input.shape()[0];
        assert_eq!(grad_output.shape(), &[n, self.out_features]);
        let g = grad_output.data();
        let out = if self.gemm_backward {
            self.backward_gemm(n, input.data(), g)
        } else {
            self.backward_direct(n, input.data(), g)
        };
        self.cached_input = Some(input);
        out
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    fn set_gemm_backward(&mut self, enabled: bool) {
        self.gemm_backward = enabled;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{Loss, MseLoss};

    /// Finite-difference gradient check on a tiny layer.
    #[test]
    fn gradients_match_finite_differences() {
        let mut layer = Linear::new(3, 2, 11);
        let x = Tensor::randn(&[4, 3], 5);
        let target = Tensor::randn(&[4, 2], 6);

        let y = layer.forward(&x);
        let (_, grad) = MseLoss.compute(&y, &target);
        layer.zero_grad();
        let gx = layer.backward(&grad);

        let eps = 1e-3f32;
        // Check weight gradients.
        let analytic = layer.weight.grad.clone();
        for idx in 0..layer.weight.value.len() {
            let orig = layer.weight.value.data()[idx];
            layer.weight.value.data_mut()[idx] = orig + eps;
            let (lp, _) = MseLoss.compute(&layer.forward(&x), &target);
            layer.weight.value.data_mut()[idx] = orig - eps;
            let (lm, _) = MseLoss.compute(&layer.forward(&x), &target);
            layer.weight.value.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic.data()[idx]).abs() < 2e-2,
                "w[{idx}]: numeric {numeric} vs analytic {}",
                analytic.data()[idx]
            );
        }
        // Check input gradients on one coordinate.
        let mut xp = x.clone();
        xp.data_mut()[0] += eps;
        let (lp, _) = MseLoss.compute(&layer.forward(&xp), &target);
        xp.data_mut()[0] -= 2.0 * eps;
        let (lm, _) = MseLoss.compute(&layer.forward(&xp), &target);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!((numeric - gx.data()[0]).abs() < 2e-2);
    }

    /// The GEMM backward matches the direct reference within 1e-5.
    #[test]
    fn gemm_backward_matches_direct_reference() {
        let mut a = Linear::new(7, 5, 21);
        let mut b = Linear::new(7, 5, 21);
        b.set_gemm_backward(false);
        let x = Tensor::randn(&[9, 7], 1);
        let ya = a.forward(&x);
        let _ = b.forward(&x);
        let grad = Tensor::randn(ya.shape(), 2);
        a.zero_grad();
        b.zero_grad();
        let gxa = a.backward(&grad);
        let gxb = b.backward(&grad);
        for (p, q) in gxa.data().iter().zip(gxb.data()) {
            assert!((p - q).abs() < 1e-5 * (1.0 + q.abs()), "dX {p} vs {q}");
        }
        for (p, q) in a.weight.grad.data().iter().zip(b.weight.grad.data()) {
            assert!((p - q).abs() < 1e-5 * (1.0 + q.abs()), "dW {p} vs {q}");
        }
        assert_eq!(a.bias.grad, b.bias.grad, "db is order-identical");
    }

    #[test]
    fn eval_mode_forward_keeps_no_grad_cache() {
        let mut l = Linear::new(3, 2, 4);
        l.set_training(false);
        let _ = l.forward(&Tensor::randn(&[4, 3], 1));
        assert!(!l.has_grad_cache());
        l.set_training(true);
        let _ = l.forward(&Tensor::randn(&[4, 3], 2));
        assert!(l.has_grad_cache());
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn rejects_wrong_width() {
        let mut l = Linear::new(3, 2, 1);
        let _ = l.forward(&Tensor::zeros(&[1, 4]));
    }

    #[test]
    fn bias_starts_zero() {
        let l = Linear::new(4, 4, 1);
        assert_eq!(l.bias.value.max_abs(), 0.0);
    }
}
