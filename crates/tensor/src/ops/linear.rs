//! Fully-connected layer.

use crate::init::kaiming_uniform;
use crate::module::{Module, Param};
use crate::tensor::Tensor;

/// `y = x W^T + b` over batched 2-D inputs `[N, in]`.
///
/// ```
/// use omniboost_tensor::{Linear, Module, Tensor};
///
/// let mut l = Linear::new(3, 2, 7);
/// let y = l.forward(&Tensor::randn(&[4, 3], 1));
/// assert_eq!(y.shape(), &[4, 2]);
/// ```
pub struct Linear {
    in_features: usize,
    out_features: usize,
    /// `[out, in]`.
    weight: Param,
    /// `[out]`.
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a Kaiming-initialized layer.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        Self {
            in_features,
            out_features,
            weight: Param::new(kaiming_uniform(
                &[out_features, in_features],
                in_features,
                seed,
            )),
            bias: Param::new(Tensor::zeros(&[out_features])),
            cached_input: None,
        }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Module for Linear {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape().len(), 2, "Linear expects [N, in] input");
        assert_eq!(input.shape()[1], self.in_features, "input width mismatch");
        let n = input.shape()[0];
        let mut out = Tensor::zeros(&[n, self.out_features]);
        let w = self.weight.value.data();
        let b = self.bias.value.data();
        let x = input.data();
        let od = out.data_mut();
        for i in 0..n {
            for o in 0..self.out_features {
                let mut acc = b[o];
                let wrow = &w[o * self.in_features..(o + 1) * self.in_features];
                let xrow = &x[i * self.in_features..(i + 1) * self.in_features];
                for (wv, xv) in wrow.iter().zip(xrow) {
                    acc += wv * xv;
                }
                od[i * self.out_features + o] = acc;
            }
        }
        self.cached_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        let n = input.shape()[0];
        assert_eq!(grad_output.shape(), &[n, self.out_features]);
        let x = input.data();
        let g = grad_output.data();
        let w = self.weight.value.data().to_vec();

        // dW[o][i] += sum_n g[n][o] * x[n][i];  db[o] += sum_n g[n][o].
        {
            let dw = self.weight.grad.data_mut();
            for s in 0..n {
                for o in 0..self.out_features {
                    let gv = g[s * self.out_features + o];
                    if gv == 0.0 {
                        continue;
                    }
                    let xrow = &x[s * self.in_features..(s + 1) * self.in_features];
                    let dwrow = &mut dw[o * self.in_features..(o + 1) * self.in_features];
                    for (d, xv) in dwrow.iter_mut().zip(xrow) {
                        *d += gv * xv;
                    }
                }
            }
        }
        {
            let db = self.bias.grad.data_mut();
            for s in 0..n {
                for o in 0..self.out_features {
                    db[o] += g[s * self.out_features + o];
                }
            }
        }

        // dx[n][i] = sum_o g[n][o] * W[o][i].
        let mut grad_input = Tensor::zeros(&[n, self.in_features]);
        let gi = grad_input.data_mut();
        for s in 0..n {
            for o in 0..self.out_features {
                let gv = g[s * self.out_features + o];
                if gv == 0.0 {
                    continue;
                }
                let wrow = &w[o * self.in_features..(o + 1) * self.in_features];
                let girow = &mut gi[s * self.in_features..(s + 1) * self.in_features];
                for (d, wv) in girow.iter_mut().zip(wrow) {
                    *d += gv * wv;
                }
            }
        }
        grad_input
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{Loss, MseLoss};

    /// Finite-difference gradient check on a tiny layer.
    #[test]
    fn gradients_match_finite_differences() {
        let mut layer = Linear::new(3, 2, 11);
        let x = Tensor::randn(&[4, 3], 5);
        let target = Tensor::randn(&[4, 2], 6);

        let y = layer.forward(&x);
        let (_, grad) = MseLoss.compute(&y, &target);
        layer.zero_grad();
        let gx = layer.backward(&grad);

        let eps = 1e-3f32;
        // Check weight gradients.
        let analytic = layer.weight.grad.clone();
        for idx in 0..layer.weight.value.len() {
            let orig = layer.weight.value.data()[idx];
            layer.weight.value.data_mut()[idx] = orig + eps;
            let (lp, _) = MseLoss.compute(&layer.forward(&x), &target);
            layer.weight.value.data_mut()[idx] = orig - eps;
            let (lm, _) = MseLoss.compute(&layer.forward(&x), &target);
            layer.weight.value.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic.data()[idx]).abs() < 2e-2,
                "w[{idx}]: numeric {numeric} vs analytic {}",
                analytic.data()[idx]
            );
        }
        // Check input gradients on one coordinate.
        let mut xp = x.clone();
        xp.data_mut()[0] += eps;
        let (lp, _) = MseLoss.compute(&layer.forward(&xp), &target);
        xp.data_mut()[0] -= 2.0 * eps;
        let (lm, _) = MseLoss.compute(&layer.forward(&xp), &target);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!((numeric - gx.data()[0]).abs() < 2e-2);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn rejects_wrong_width() {
        let mut l = Linear::new(3, 2, 1);
        let _ = l.forward(&Tensor::zeros(&[1, 4]));
    }

    #[test]
    fn bias_starts_zero() {
        let l = Linear::new(4, 4, 1);
        assert_eq!(l.bias.value.max_abs(), 0.0);
    }
}
