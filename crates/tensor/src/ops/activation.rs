//! Element-wise activations: GELU (the paper's choice, §IV-B) and ReLU
//! (kept for the GELU-vs-ReLU ablation).

use crate::module::Module;
use crate::tensor::Tensor;

const SQRT_2_OVER_PI: f32 = 0.797_884_6;
const GELU_C: f32 = 0.044_715;

/// Fast `tanh`: the classic clamped rational approximation
/// (odd 13th-degree numerator over even 6th-degree denominator, the
/// Eigen/XLA coefficients), accurate to ~1e-6 absolute across the whole
/// line. Unlike libm's `tanhf` it is branch-free arithmetic, so the
/// activation loops vectorize — profiling showed libm `tanh` dominating
/// the §V training step (≈15 ms of a 17 ms forward at batch 32) before
/// this replacement.
fn fast_tanh(x: f32) -> f32 {
    // tanh saturates to ±1 (f32) past ~±7.9; clamping also bounds the
    // polynomials' arguments.
    let x = x.clamp(-7.905_311, 7.905_311);
    let x2 = x * x;
    let mut p = -2.760_768_4e-16f32;
    p = x2 * p + 2.000_188e-13;
    p = x2 * p + -8.604_672e-11;
    p = x2 * p + 5.122_297e-8;
    p = x2 * p + 1.485_722_4e-5;
    p = x2 * p + 6.372_619e-4;
    p = x2 * p + 4.893_525e-3;
    let p = x * p;
    let mut q = 1.198_258_4e-6f32;
    q = x2 * q + 1.185_347e-4;
    q = x2 * q + 2.268_434_6e-3;
    q = x2 * q + 4.893_525e-3;
    p / q
}

/// Gaussian Error Linear Unit, tanh approximation:
/// `gelu(x) = 0.5 x (1 + tanh(√(2/π)(x + 0.044715 x³)))`.
///
/// The paper replaces the original ResNet9 ReLUs with GELU and reports
/// improved convergence and accuracy.
///
/// ```
/// use omniboost_tensor::{Gelu, Module, Tensor};
///
/// let mut g = Gelu::new();
/// let y = g.forward(&Tensor::from_vec(vec![-2.0, 0.0, 2.0], &[1, 3]));
/// assert!(y.data()[0] < 0.0 && y.data()[0] > -0.1); // small negative tail
/// assert_eq!(y.data()[1], 0.0);
/// assert!((y.data()[2] - 1.954).abs() < 1e-2);
/// ```
#[derive(Debug, Default)]
pub struct Gelu {
    cached_input: Option<Tensor>,
    /// Inverted training flag so `Default` (false) means training mode.
    inference: bool,
}

impl Gelu {
    /// Creates the activation.
    pub fn new() -> Self {
        Self::default()
    }
}

fn gelu_scalar(x: f32) -> f32 {
    0.5 * x * (1.0 + fast_tanh(SQRT_2_OVER_PI * (x + GELU_C * x * x * x)))
}

fn gelu_grad_scalar(x: f32) -> f32 {
    let u = SQRT_2_OVER_PI * (x + GELU_C * x * x * x);
    let t = fast_tanh(u);
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * SQRT_2_OVER_PI * (1.0 + 3.0 * GELU_C * x * x)
}

impl Module for Gelu {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.cached_input = if self.inference {
            None
        } else {
            Some(input.clone())
        };
        Tensor::from_vec(
            input.data().iter().map(|&x| gelu_scalar(x)).collect(),
            input.shape(),
        )
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        assert_eq!(grad_output.shape(), input.shape());
        Tensor::from_vec(
            input
                .data()
                .iter()
                .zip(grad_output.data())
                .map(|(&x, &g)| g * gelu_grad_scalar(x))
                .collect(),
            input.shape(),
        )
    }

    fn set_training(&mut self, training: bool) {
        self.inference = !training;
    }
}

/// Rectified linear unit, `relu(x) = max(0, x)`.
#[derive(Debug, Default)]
pub struct Relu {
    cached_input: Option<Tensor>,
    /// Inverted training flag so `Default` (false) means training mode.
    inference: bool,
}

impl Relu {
    /// Creates the activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Module for Relu {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.cached_input = if self.inference {
            None
        } else {
            Some(input.clone())
        };
        Tensor::from_vec(
            input.data().iter().map(|&x| x.max(0.0)).collect(),
            input.shape(),
        )
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        assert_eq!(grad_output.shape(), input.shape());
        Tensor::from_vec(
            input
                .data()
                .iter()
                .zip(grad_output.data())
                .map(|(&x, &g)| if x > 0.0 { g } else { 0.0 })
                .collect(),
            input.shape(),
        )
    }

    fn set_training(&mut self, training: bool) {
        self.inference = !training;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gelu_matches_reference_points() {
        // Reference values from the tanh approximation.
        assert!((gelu_scalar(1.0) - 0.841_19).abs() < 1e-3);
        assert!((gelu_scalar(-1.0) + 0.158_81).abs() < 1e-3);
        assert_eq!(gelu_scalar(0.0), 0.0);
    }

    #[test]
    fn gelu_gradient_matches_finite_differences() {
        let eps = 1e-3f32;
        for x in [-3.0f32, -1.0, -0.1, 0.0, 0.5, 2.0] {
            let numeric = (gelu_scalar(x + eps) - gelu_scalar(x - eps)) / (2.0 * eps);
            let analytic = gelu_grad_scalar(x);
            assert!(
                (numeric - analytic).abs() < 1e-3,
                "x={x}: {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    fn relu_zeroes_negative_gradient() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0], &[1, 2]);
        let _ = r.forward(&x);
        let g = r.backward(&Tensor::from_vec(vec![5.0, 5.0], &[1, 2]));
        assert_eq!(g.data(), &[0.0, 5.0]);
    }

    #[test]
    fn gelu_is_smoother_than_relu_near_zero() {
        // GELU passes small negative values through (non-zero gradient).
        assert!(gelu_grad_scalar(-0.1) > 0.0);
    }

    /// The rational approximation tracks libm tanh to well under the
    /// tolerance any consumer of GELU relies on.
    #[test]
    fn fast_tanh_matches_libm() {
        let mut x = -10.0f32;
        let mut worst = 0.0f32;
        while x <= 10.0 {
            worst = worst.max((fast_tanh(x) - x.tanh()).abs());
            x += 0.001;
        }
        assert!(worst < 2e-6, "max |fast_tanh - tanh| = {worst}");
        assert_eq!(fast_tanh(0.0), 0.0);
        assert!((fast_tanh(100.0) - 1.0).abs() < 1e-6, "saturates high");
        assert!((fast_tanh(-100.0) + 1.0).abs() < 1e-6, "saturates low");
    }
}
