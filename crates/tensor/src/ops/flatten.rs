//! Flatten `[N, C, H, W]` (or any rank ≥ 2) to `[N, F]`.

use crate::module::Module;
use crate::tensor::Tensor;

/// Flattens all axes after the batch axis.
#[derive(Debug, Default)]
pub struct Flatten {
    cached_input_shape: Vec<usize>,
    /// Inverted training flag so `Default` (false) means training mode.
    inference: bool,
}

impl Flatten {
    /// Creates the reshaper.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Module for Flatten {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert!(input.shape().len() >= 2, "Flatten expects rank >= 2");
        self.cached_input_shape.clear();
        if !self.inference {
            self.cached_input_shape.extend_from_slice(input.shape());
        }
        let n = input.shape()[0];
        let f: usize = input.shape()[1..].iter().product();
        input.reshape(&[n, f])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert!(
            !self.cached_input_shape.is_empty(),
            "backward called before forward"
        );
        grad_output.reshape(&self.cached_input_shape)
    }

    fn set_training(&mut self, training: bool) {
        self.inference = !training;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_shapes() {
        let mut fl = Flatten::new();
        let x = Tensor::randn(&[3, 2, 4, 5], 1);
        let y = fl.forward(&x);
        assert_eq!(y.shape(), &[3, 40]);
        let g = fl.backward(&y);
        assert_eq!(g.shape(), x.shape());
        assert_eq!(g.data(), x.data());
    }
}
