//! Residual block: `y = gelu(conv2(gelu(conv1(x))) + x)`.
//!
//! The paper's estimator is "ResNet9-based … with residual connections"
//! (§IV-B); this block is its skip-connection unit. Channel count is
//! preserved so the identity shortcut needs no projection.

use crate::module::{Module, Param};
use crate::ops::activation::Gelu;
use crate::ops::conv::Conv2d;
use crate::tensor::Tensor;

/// A two-convolution identity-shortcut residual block with GELU
/// activations and 3×3 kernels.
///
/// ```
/// use omniboost_tensor::{Module, ResidualBlock, Tensor};
///
/// let mut block = ResidualBlock::new(8, 42);
/// let x = Tensor::randn(&[2, 8, 5, 10], 1);
/// let y = block.forward(&x);
/// assert_eq!(y.shape(), x.shape());
/// ```
pub struct ResidualBlock {
    conv1: Conv2d,
    act1: Gelu,
    conv2: Conv2d,
    act_out: Gelu,
}

impl ResidualBlock {
    /// Creates a block operating on `channels`-wide feature maps.
    pub fn new(channels: usize, seed: u64) -> Self {
        Self {
            conv1: Conv2d::new(channels, channels, 3, 1, 1, seed),
            act1: Gelu::new(),
            conv2: Conv2d::new(channels, channels, 3, 1, 1, seed.wrapping_add(1)),
            act_out: Gelu::new(),
        }
    }
}

impl Module for ResidualBlock {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let h = self.conv1.forward(input);
        let h = self.act1.forward(&h);
        let h = self.conv2.forward(&h);
        let sum = h.add(input);
        self.act_out.forward(&sum)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let g_sum = self.act_out.backward(grad_output);
        // d(sum)/d(branch) = 1 and d(sum)/d(input) = 1.
        let g_branch = self.conv2.backward(&g_sum);
        let g_branch = self.act1.backward(&g_branch);
        let g_input_via_branch = self.conv1.backward(&g_branch);
        g_input_via_branch.add(&g_sum)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.conv1.params_mut();
        p.extend(self.conv2.params_mut());
        p
    }

    fn set_training(&mut self, training: bool) {
        self.conv1.set_training(training);
        self.act1.set_training(training);
        self.conv2.set_training(training);
        self.act_out.set_training(training);
    }

    fn set_gemm_backward(&mut self, enabled: bool) {
        self.conv1.set_gemm_backward(enabled);
        self.conv2.set_gemm_backward(enabled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{Loss, MseLoss};

    #[test]
    fn param_count_is_two_convs() {
        let mut b = ResidualBlock::new(4, 1);
        assert_eq!(b.num_params(), 2 * (4 * 4 * 9 + 4));
    }

    #[test]
    fn shortcut_passes_gradient_even_with_zero_weights() {
        let mut b = ResidualBlock::new(2, 1);
        for p in b.params_mut() {
            p.value.fill_zero();
        }
        let x = Tensor::randn(&[1, 2, 3, 3], 2);
        let y = b.forward(&x);
        // With zero convs, y = gelu(x), so backward must be non-zero.
        let g = b.backward(&Tensor::full(y.shape(), 1.0));
        assert!(g.max_abs() > 0.0);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut b = ResidualBlock::new(2, 3);
        let x = Tensor::randn(&[1, 2, 3, 3], 5);
        let target = Tensor::randn(&[1, 2, 3, 3], 6);
        let y = b.forward(&x);
        let (_, grad) = MseLoss.compute(&y, &target);
        b.zero_grad();
        let gx = b.backward(&grad);

        let eps = 1e-2f32;
        // Input gradient spot-check.
        for idx in [0usize, 5, 13] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let (lp, _) = MseLoss.compute(&b.forward(&xp), &target);
            xp.data_mut()[idx] -= 2.0 * eps;
            let (lm, _) = MseLoss.compute(&b.forward(&xp), &target);
            let numeric = (lp - lm) / (2.0 * eps);
            let a = gx.data()[idx];
            assert!((numeric - a).abs() < 3e-2, "x[{idx}]: {numeric} vs {a}");
        }
    }
}
