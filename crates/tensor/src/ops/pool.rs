//! Pooling layers.

use crate::module::Module;
use crate::tensor::Tensor;

/// Max pooling with square window and stride = window (non-overlapping),
/// over `[N, C, H, W]` inputs. Trailing rows/columns that do not fill a
/// window are dropped (floor semantics), matching PyTorch defaults.
///
/// ```
/// use omniboost_tensor::{MaxPool2d, Module, Tensor};
///
/// let mut p = MaxPool2d::new(2);
/// let y = p.forward(&Tensor::randn(&[1, 3, 11, 40], 1));
/// assert_eq!(y.shape(), &[1, 3, 5, 20]);
/// ```
#[derive(Debug)]
pub struct MaxPool2d {
    window: usize,
    cached_input_shape: Vec<usize>,
    /// Flat input index of each output's argmax.
    cached_argmax: Vec<usize>,
    training: bool,
}

impl MaxPool2d {
    /// Creates a pool with the given window size.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            window,
            cached_input_shape: Vec::new(),
            cached_argmax: Vec::new(),
            training: true,
        }
    }
}

impl Module for MaxPool2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let [n, c, h, w] = match *input.shape() {
            [n, c, h, w] => [n, c, h, w],
            _ => panic!("MaxPool2d expects [N, C, H, W] input"),
        };
        let k = self.window;
        let (oh, ow) = (h / k, w / k);
        assert!(oh > 0 && ow > 0, "input smaller than pooling window");
        let x = input.data();
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let od = out.data_mut();
        // One window-iteration loop for both modes: training records
        // each output's argmax for backward (buffers reused across
        // steps — clear+resize keeps the allocation); inference clears
        // the caches and skips only the bookkeeping writes, so the
        // indexing arithmetic can never drift between train and serve.
        self.cached_argmax.clear();
        self.cached_input_shape.clear();
        if self.training {
            self.cached_argmax.resize(od.len(), 0);
            self.cached_input_shape.extend_from_slice(input.shape());
        }
        for ni in 0..n {
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = oy * k + ky;
                                let ix = ox * k + kx;
                                let idx = ((ni * c + ci) * h + iy) * w + ix;
                                if x[idx] > best {
                                    best = x[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let oidx = ((ni * c + ci) * oh + oy) * ow + ox;
                        od[oidx] = best;
                        if self.training {
                            self.cached_argmax[oidx] = best_idx;
                        }
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert!(
            !self.cached_input_shape.is_empty(),
            "backward called before forward"
        );
        let mut grad_input = Tensor::zeros(&self.cached_input_shape);
        let gi = grad_input.data_mut();
        for (oidx, &iidx) in self.cached_argmax.iter().enumerate() {
            gi[iidx] += grad_output.data()[oidx];
        }
        grad_input
    }

    fn set_training(&mut self, training: bool) {
        self.training = training;
    }
}

/// Global average pooling: `[N, C, H, W] -> [N, C, 1, 1]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    cached_input_shape: Vec<usize>,
    /// Inverted training flag so `Default` (false) means training mode.
    inference: bool,
}

impl GlobalAvgPool {
    /// Creates the pool.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Module for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let [n, c, h, w] = match *input.shape() {
            [n, c, h, w] => [n, c, h, w],
            _ => panic!("GlobalAvgPool expects [N, C, H, W] input"),
        };
        self.cached_input_shape.clear();
        if !self.inference {
            self.cached_input_shape.extend_from_slice(input.shape());
        }
        let x = input.data();
        let mut out = Tensor::zeros(&[n, c, 1, 1]);
        let od = out.data_mut();
        let area = (h * w) as f32;
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                let s: f32 = x[base..base + h * w].iter().sum();
                od[ni * c + ci] = s / area;
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert!(
            !self.cached_input_shape.is_empty(),
            "backward called before forward"
        );
        let [n, c, h, w] = match *self.cached_input_shape.as_slice() {
            [n, c, h, w] => [n, c, h, w],
            _ => unreachable!(),
        };
        let mut grad_input = Tensor::zeros(&self.cached_input_shape);
        let gi = grad_input.data_mut();
        let area = (h * w) as f32;
        for ni in 0..n {
            for ci in 0..c {
                let g = grad_output.data()[ni * c + ci] / area;
                let base = (ni * c + ci) * h * w;
                for v in gi[base..base + h * w].iter_mut() {
                    *v = g;
                }
            }
        }
        grad_input
    }

    fn set_training(&mut self, training: bool) {
        self.inference = !training;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_maxima() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let mut p = MaxPool2d::new(2);
        let y = p.forward(&x);
        assert_eq!(y.data(), &[4.0]);
        let g = p.backward(&Tensor::from_vec(vec![7.0], &[1, 1, 1, 1]));
        assert_eq!(g.data(), &[0.0, 0.0, 0.0, 7.0]);
    }

    #[test]
    fn maxpool_drops_trailing_odd_edge() {
        let mut p = MaxPool2d::new(2);
        let y = p.forward(&Tensor::zeros(&[1, 1, 5, 7]));
        assert_eq!(y.shape(), &[1, 1, 2, 3]);
    }

    #[test]
    fn global_avg_is_mean() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let mut p = GlobalAvgPool::new();
        let y = p.forward(&x);
        assert_eq!(y.data(), &[2.5]);
        let g = p.backward(&Tensor::from_vec(vec![4.0], &[1, 1, 1, 1]));
        assert_eq!(g.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = MaxPool2d::new(0);
    }
}
