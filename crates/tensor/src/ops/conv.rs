//! 2-D convolution: direct reference kernels plus im2col/GEMM-structured
//! batched forward *and* backward passes sharing the [`crate::gemm`] core.

use crate::gemm::{gemm_nn, gemm_nt, gemm_tn, GemmScratch};
use crate::init::kaiming_uniform;
use crate::module::{Module, Param};
use crate::tensor::Tensor;

/// Reusable per-layer working memory: the lowered column matrix, the
/// `[OC, N·OH·OW]` staging buffer shared by forward outputs and backward
/// gradients, the lowered input gradient and the GEMM packing buffers.
/// Held by the module so steady-state training steps allocate nothing
/// beyond their output tensors.
#[derive(Debug, Default)]
struct ConvScratch {
    /// im2col matrix `[C·k·k, N·OH·OW]` from the latest training-mode
    /// batched forward; reused by the GEMM backward so it never
    /// re-lowers the input. Valid only while `cols_valid`.
    cols: Vec<f32>,
    cols_valid: bool,
    /// `[OC, N·OH·OW]`: forward accumulator / backward gradient gather.
    gbuf: Vec<f32>,
    /// `[C·k·k, OH·OW]` per-sample lowered input gradient (`Wᵀ·G`) —
    /// sized to stay cache-resident between the multiply and col2im.
    dcols: Vec<f32>,
    gemm: GemmScratch,
}

/// 2-D convolution over `[N, C, H, W]` inputs with square kernels.
///
/// ```
/// use omniboost_tensor::{Conv2d, Module, Tensor};
///
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, 42);
/// let y = conv.forward(&Tensor::randn(&[2, 3, 11, 40], 1));
/// assert_eq!(y.shape(), &[2, 8, 11, 40]);
/// ```
pub struct Conv2d {
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    /// `[out_ch, in_ch, k, k]`.
    weight: Param,
    /// `[out_ch]`.
    bias: Param,
    cached_input: Option<Tensor>,
    training: bool,
    gemm_backward: bool,
    scratch: ConvScratch,
}

impl Conv2d {
    /// Creates a Kaiming-initialized convolution.
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        seed: u64,
    ) -> Self {
        let fan_in = in_ch * kernel * kernel;
        Self {
            in_ch,
            out_ch,
            kernel,
            stride,
            pad,
            weight: Param::new(kaiming_uniform(
                &[out_ch, in_ch, kernel, kernel],
                fan_in,
                seed,
            )),
            bias: Param::new(Tensor::zeros(&[out_ch])),
            cached_input: None,
            training: true,
            gemm_backward: true,
            scratch: ConvScratch::default(),
        }
    }

    fn out_extent(&self, inp: usize) -> usize {
        (inp + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Whether a gradient cache from the last training-mode forward is
    /// held (eval-mode forwards leave this `false` — the serving path
    /// pays no input clone).
    pub fn has_grad_cache(&self) -> bool {
        self.cached_input.is_some()
    }

    /// col2im for one sample: scatter-adds a `[C·k·k, OH·OW]` lowered
    /// gradient tile onto that sample's input plane — the exact adjoint
    /// of the im2col lowering, with the same stride-1 contiguous fast
    /// path. Operating per sample keeps the tile L2-resident between
    /// the `Wᵀ·G` multiply that produced it and this scatter.
    #[allow(clippy::too_many_arguments)]
    fn col2im_sample(
        &self,
        c: usize,
        h: usize,
        w: usize,
        oh: usize,
        ow: usize,
        dcols: &[f32],
        gi_sample: &mut [f32],
    ) {
        let k = self.kernel;
        let s = self.stride;
        let pad = self.pad as isize;
        let spatial = oh * ow;
        for ic in 0..c {
            for ky in 0..k {
                for kx in 0..k {
                    let row_base = (((ic * k) + ky) * k + kx) * spatial;
                    let xplane = &mut gi_sample[(ic * h) * w..(ic * h + h) * w];
                    for oy in 0..oh {
                        let iy = (oy * s + ky) as isize - pad;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let src = &dcols[row_base + oy * ow..][..ow];
                        let xrow = &mut xplane[(iy as usize) * w..(iy as usize + 1) * w];
                        if s == 1 {
                            let off = kx as isize - pad;
                            let lo = (-off).max(0) as usize;
                            let hi = ow.min((w as isize - off).max(0) as usize);
                            if lo < hi {
                                let xseg = &mut xrow
                                    [(lo as isize + off) as usize..(hi as isize + off) as usize];
                                for (d, v) in xseg.iter_mut().zip(&src[lo..hi]) {
                                    *d += v;
                                }
                            }
                        } else {
                            for (ox, &v) in src.iter().enumerate() {
                                let ix = (ox * s + kx) as isize - pad;
                                if ix >= 0 && ix < w as isize {
                                    xrow[ix as usize] += v;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Batched im2col/GEMM-structured forward for `N > 1`.
    ///
    /// Lowers the input into a `[C·k·k, N·OH·OW]` column matrix once,
    /// then computes `out = W·cols + b` with the packed register-blocked
    /// [`gemm_nn`] kernel and scatters back to `[N, OC, OH, OW]`.
    ///
    /// Numerical contract: [`gemm_nn`] accumulates each output element's
    /// taps in the same ascending `(ic, ky, kx)` order onto the bias as
    /// the direct kernel, so outputs are bit-identical except that
    /// padded positions contribute an explicit `w·0.0` instead of being
    /// skipped (can flip a `-0.0` to `+0.0`, never a value change).
    fn forward_batched_gemm(
        &mut self,
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        x: &[f32],
    ) -> Tensor {
        let (oh, ow) = (self.out_extent(h), self.out_extent(w));
        let spatial = oh * ow;
        let cols_w = n * spatial;
        let kk = c * self.kernel * self.kernel;
        let ConvScratch {
            cols, gbuf, gemm, ..
        } = &mut self.scratch;
        // Borrow-friendly split: im2col needs &self fields only.
        let (kernel, stride, pad) = (self.kernel, self.stride, self.pad as isize);
        im2col_into(kernel, stride, pad, n, c, h, w, oh, ow, x, cols);
        gbuf.clear();
        gbuf.resize(self.out_ch * cols_w, 0.0);
        let b = self.bias.value.data();
        for (oc, row) in gbuf.chunks_exact_mut(cols_w).enumerate() {
            row.fill(b[oc]);
        }
        gemm_nn(
            self.out_ch,
            kk,
            cols_w,
            self.weight.value.data(),
            cols,
            gbuf,
            gemm,
        );
        let mut out = Tensor::zeros(&[n, self.out_ch, oh, ow]);
        let od = out.data_mut();
        for oc in 0..self.out_ch {
            let row = &gbuf[oc * cols_w..(oc + 1) * cols_w];
            for ni in 0..n {
                od[((ni * self.out_ch + oc) * oh) * ow..][..spatial]
                    .copy_from_slice(&row[ni * spatial..(ni + 1) * spatial]);
            }
        }
        out
    }

    /// GEMM-structured backward over the cached `cols` matrix:
    /// `dW += G·colsᵀ`, `dX = col2im(Wᵀ·G)`, `db += row-sums of G` —
    /// three passes whose inner runs are `N·OH·OW` long, versus the
    /// direct kernel's `OW`.
    #[allow(clippy::too_many_arguments)]
    fn backward_gemm(
        &mut self,
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        oh: usize,
        ow: usize,
        g: &[f32],
    ) -> Tensor {
        let spatial = oh * ow;
        let cols_w = n * spatial;
        let kk = c * self.kernel * self.kernel;
        let ConvScratch {
            cols, gbuf, dcols, ..
        } = &mut self.scratch;
        // Gather the output gradient into GEMM layout `[OC, N·OH·OW]`,
        // accumulating the bias gradient along the way (sequential row
        // sums match the direct kernel's (ni, oy, ox) order bitwise).
        gbuf.clear();
        gbuf.resize(self.out_ch * cols_w, 0.0);
        let db = self.bias.grad.data_mut();
        for (oc, row) in gbuf.chunks_exact_mut(cols_w).enumerate() {
            for ni in 0..n {
                row[ni * spatial..(ni + 1) * spatial]
                    .copy_from_slice(&g[((ni * self.out_ch + oc) * spatial)..][..spatial]);
            }
            for &v in row.iter() {
                db[oc] += v;
            }
        }
        // dW += G · colsᵀ.
        gemm_nt(
            self.out_ch,
            cols_w,
            kk,
            gbuf,
            cols,
            self.weight.grad.data_mut(),
        );
        // dX, one sample at a time: lower `Wᵀ·G` into an L2-sized
        // per-sample tile (G2's column window via the strided B) and
        // scatter it while hot, instead of materializing the full
        // `[C·k·k, N·OH·OW]` gradient matrix and re-reading it.
        dcols.clear();
        dcols.resize(kk * spatial, 0.0);
        let mut grad_input = Tensor::zeros(&[n, c, h, w]);
        let gi = grad_input.data_mut();
        let sample = c * h * w;
        for ni in 0..n {
            self.scratch.dcols.fill(0.0);
            gemm_tn(
                kk,
                self.out_ch,
                spatial,
                self.weight.value.data(),
                &self.scratch.gbuf[ni * spatial..],
                cols_w,
                &mut self.scratch.dcols,
            );
            self.col2im_sample(
                c,
                h,
                w,
                oh,
                ow,
                &self.scratch.dcols,
                &mut gi[ni * sample..(ni + 1) * sample],
            );
        }
        grad_input
    }

    /// The seed's direct 7-deep backward kernel — kept verbatim as the
    /// `N == 1` path and the A/B reference for
    /// [`Module::set_gemm_backward`].
    #[allow(clippy::too_many_arguments)]
    fn backward_direct(
        &mut self,
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        oh: usize,
        ow: usize,
        x: &[f32],
        g: &[f32],
    ) -> Tensor {
        let wt = self.weight.value.data().to_vec();
        let k = self.kernel;
        let s = self.stride;
        let pad = self.pad as isize;

        let mut grad_input = Tensor::zeros(&[n, c, h, w]);
        {
            let dw = self.weight.grad.data_mut();
            let gi = grad_input.data_mut();
            for ni in 0..n {
                for oc in 0..self.out_ch {
                    let gbase = ((ni * self.out_ch + oc) * oh) * ow;
                    for ic in 0..c {
                        let xbase = ((ni * c + ic) * h) * w;
                        for ky in 0..k {
                            for kx in 0..k {
                                let wi = ((oc * c + ic) * k + ky) * k + kx;
                                let wv = wt[wi];
                                let mut dw_acc = 0.0f32;
                                for oy in 0..oh {
                                    let iy = (oy * s + ky) as isize - pad;
                                    if iy < 0 || iy >= h as isize {
                                        continue;
                                    }
                                    let grow = &g[gbase + oy * ow..gbase + (oy + 1) * ow];
                                    let xrow_base = xbase + (iy as usize) * w;
                                    for (ox, gv) in grow.iter().enumerate() {
                                        let ix = (ox * s + kx) as isize - pad;
                                        if ix >= 0 && ix < w as isize {
                                            let xi = xrow_base + ix as usize;
                                            dw_acc += gv * x[xi];
                                            gi[xi] += gv * wv;
                                        }
                                    }
                                }
                                dw[wi] += dw_acc;
                            }
                        }
                    }
                }
            }
        }
        {
            let db = self.bias.grad.data_mut();
            for ni in 0..n {
                for oc in 0..self.out_ch {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            db[oc] += g[((ni * self.out_ch + oc) * oh + oy) * ow + ox];
                        }
                    }
                }
            }
        }
        grad_input
    }
}

/// im2col: lowers `x` into `cols[(ic·k+ky)·k+kx][ni·spatial + oy·ow +
/// ox]` (0.0 in the padding ring), fully overwriting `cols`. A free
/// function rather than a method so its caller
/// (`Conv2d::forward_batched_gemm`) can borrow the scratch buffers
/// field-by-field.
#[allow(clippy::too_many_arguments)]
fn im2col_into(
    k: usize,
    s: usize,
    pad: isize,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    oh: usize,
    ow: usize,
    x: &[f32],
    cols: &mut Vec<f32>,
) {
    let spatial = oh * ow;
    let cols_w = n * spatial;
    let kk = c * k * k;
    cols.clear();
    cols.resize(kk * cols_w, 0.0);
    for ic in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row_base = (((ic * k) + ky) * k + kx) * cols_w;
                for ni in 0..n {
                    let xplane = &x[((ni * c + ic) * h) * w..((ni * c + ic) * h + h) * w];
                    for oy in 0..oh {
                        let iy = (oy * s + ky) as isize - pad;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let xrow = &xplane[(iy as usize) * w..(iy as usize + 1) * w];
                        let dst = &mut cols[row_base + ni * spatial + oy * ow..][..ow];
                        if s == 1 {
                            let off = kx as isize - pad;
                            let lo = (-off).max(0) as usize;
                            let hi = ow.min((w as isize - off).max(0) as usize);
                            if lo < hi {
                                dst[lo..hi].copy_from_slice(
                                    &xrow[(lo as isize + off) as usize
                                        ..(hi as isize + off) as usize],
                                );
                            }
                        } else {
                            for (ox, d) in dst.iter_mut().enumerate() {
                                let ix = (ox * s + kx) as isize - pad;
                                if ix >= 0 && ix < w as isize {
                                    *d = xrow[ix as usize];
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

impl Module for Conv2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let [n, c, h, w] = match *input.shape() {
            [n, c, h, w] => [n, c, h, w],
            _ => panic!("Conv2d expects [N, C, H, W] input"),
        };
        assert_eq!(c, self.in_ch, "input channel mismatch");
        if n > 1 {
            let out = self.forward_batched_gemm(n, c, h, w, input.data());
            if self.training {
                // Cache the input *and* keep the lowered cols so the
                // GEMM backward never re-lowers; eval mode keeps the
                // serving path clone-free.
                self.cached_input = Some(input.clone());
                self.scratch.cols_valid = true;
            } else {
                self.cached_input = None;
                self.scratch.cols_valid = false;
            }
            return out;
        }
        let (oh, ow) = (self.out_extent(h), self.out_extent(w));
        let mut out = Tensor::zeros(&[n, self.out_ch, oh, ow]);
        let x = input.data();
        let wt = self.weight.value.data();
        let b = self.bias.value.data();
        let od = out.data_mut();
        let k = self.kernel;
        let s = self.stride;
        let pad = self.pad as isize;
        for ni in 0..n {
            for oc in 0..self.out_ch {
                // Bias initialization for the whole output plane.
                let obase = ((ni * self.out_ch + oc) * oh) * ow;
                od[obase..obase + oh * ow].fill(b[oc]);
                // Accumulate one (ic, ky, kx) tap at a time; the inner ox
                // loop is a contiguous shifted multiply-add, which the
                // compiler vectorizes.
                for ic in 0..c {
                    let xplane = &x[((ni * c + ic) * h) * w..((ni * c + ic) * h + h) * w];
                    for ky in 0..k {
                        for kx in 0..k {
                            let wv = wt[((oc * c + ic) * k + ky) * k + kx];
                            if wv == 0.0 {
                                continue;
                            }
                            for oy in 0..oh {
                                let iy = (oy * s + ky) as isize - pad;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                let xrow = &xplane[(iy as usize) * w..(iy as usize + 1) * w];
                                let orow = &mut od[obase + oy * ow..obase + (oy + 1) * ow];
                                if s == 1 {
                                    // Stride-1 fast path: the in-bounds ox
                                    // range is contiguous, so hoist the
                                    // bounds check out of the inner loop
                                    // and let it vectorize. Accumulation
                                    // order is unchanged (out-of-range ox
                                    // never contributed), keeping results
                                    // bitwise identical to the branchy
                                    // general case below.
                                    let off = kx as isize - pad; // ix = ox + off
                                    let lo = (-off).max(0) as usize;
                                    let hi = ow.min((w as isize - off).max(0) as usize);
                                    if lo < hi {
                                        let xseg = &xrow[(lo as isize + off) as usize
                                            ..(hi as isize + off) as usize];
                                        for (o, xv) in orow[lo..hi].iter_mut().zip(xseg) {
                                            *o += wv * xv;
                                        }
                                    }
                                } else {
                                    for (ox, o) in orow.iter_mut().enumerate() {
                                        let ix = (ox * s + kx) as isize - pad;
                                        if ix >= 0 && ix < w as isize {
                                            *o += wv * xrow[ix as usize];
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        if self.training {
            self.cached_input = Some(input.clone());
        } else {
            self.cached_input = None;
        }
        self.scratch.cols_valid = false;
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("backward called before forward");
        let [n, c, h, w] = match *input.shape() {
            [n, c, h, w] => [n, c, h, w],
            _ => unreachable!(),
        };
        let (oh, ow) = (self.out_extent(h), self.out_extent(w));
        assert_eq!(grad_output.shape(), &[n, self.out_ch, oh, ow]);
        let g = grad_output.data();
        let out = if self.gemm_backward && n > 1 && self.scratch.cols_valid {
            self.backward_gemm(n, c, h, w, oh, ow, g)
        } else {
            self.backward_direct(n, c, h, w, oh, ow, input.data(), g)
        };
        // Restore the cache: repeated backward over one forward (the
        // seed's contract) keeps working on both paths.
        self.cached_input = Some(input);
        out
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    fn set_gemm_backward(&mut self, enabled: bool) {
        self.gemm_backward = enabled;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{Loss, MseLoss};

    #[test]
    fn identity_kernel_passes_through() {
        // 1x1 conv, weight = identity over channels.
        let mut conv = Conv2d::new(2, 2, 1, 1, 0, 1);
        conv.weight.value = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2, 1, 1]);
        let x = Tensor::randn(&[1, 2, 3, 3], 2);
        let y = conv.forward(&x);
        for (a, b) in x.data().iter().zip(y.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn stride_and_pad_shape_math() {
        let mut conv = Conv2d::new(1, 4, 3, 2, 1, 1);
        let y = conv.forward(&Tensor::zeros(&[1, 1, 11, 40]));
        assert_eq!(y.shape(), &[1, 4, 6, 20]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        // N = 2: this exercises the GEMM backward (batched) path.
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, 13);
        let x = Tensor::randn(&[2, 2, 4, 4], 5);
        let target = Tensor::randn(&[2, 3, 4, 4], 6);

        let y = conv.forward(&x);
        let (_, grad) = MseLoss.compute(&y, &target);
        conv.zero_grad();
        let gx = conv.backward(&grad);

        let eps = 1e-2f32;
        let analytic_w = conv.weight.grad.clone();
        // Spot-check a spread of weight coordinates.
        for idx in [0usize, 7, 13, 26, 53] {
            let orig = conv.weight.value.data()[idx];
            conv.weight.value.data_mut()[idx] = orig + eps;
            let (lp, _) = MseLoss.compute(&conv.forward(&x), &target);
            conv.weight.value.data_mut()[idx] = orig - eps;
            let (lm, _) = MseLoss.compute(&conv.forward(&x), &target);
            conv.weight.value.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic_w.data()[idx];
            assert!((numeric - a).abs() < 3e-2, "w[{idx}]: {numeric} vs {a}");
        }
        // Spot-check input gradient.
        for idx in [0usize, 9, 31] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let (lp, _) = MseLoss.compute(&conv.forward(&xp), &target);
            xp.data_mut()[idx] -= 2.0 * eps;
            let (lm, _) = MseLoss.compute(&conv.forward(&xp), &target);
            let numeric = (lp - lm) / (2.0 * eps);
            let a = gx.data()[idx];
            assert!((numeric - a).abs() < 3e-2, "x[{idx}]: {numeric} vs {a}");
        }
    }

    /// The GEMM backward and the direct reference kernel must agree on
    /// dW, dX and db within 1e-5 across strides, pads and batch sizes.
    #[test]
    fn gemm_backward_matches_direct_reference() {
        for &(n, cin, cout, k, s, p, hw) in &[
            (2usize, 2usize, 3usize, 3usize, 1usize, 1usize, 5usize),
            (3, 1, 4, 3, 2, 1, 7),
            (4, 3, 2, 1, 1, 0, 4),
            (2, 2, 2, 2, 2, 0, 6),
        ] {
            let mut gemm_conv = Conv2d::new(cin, cout, k, s, p, 99);
            let mut direct_conv = Conv2d::new(cin, cout, k, s, p, 99);
            direct_conv.set_gemm_backward(false);
            let x = Tensor::randn(&[n, cin, hw, hw], 3);
            let y = gemm_conv.forward(&x);
            let y2 = direct_conv.forward(&x);
            assert_eq!(y.shape(), y2.shape());
            let grad = Tensor::randn(y.shape(), 4);
            gemm_conv.zero_grad();
            direct_conv.zero_grad();
            let gx = gemm_conv.backward(&grad);
            let gx2 = direct_conv.backward(&grad);
            let ctx = format!("n={n} cin={cin} cout={cout} k={k} s={s} p={p}");
            for (a, b) in gx.data().iter().zip(gx2.data()) {
                assert!(
                    (a - b).abs() < 1e-5 * (1.0 + b.abs()),
                    "dX {a} vs {b} [{ctx}]"
                );
            }
            for (a, b) in gemm_conv
                .weight
                .grad
                .data()
                .iter()
                .zip(direct_conv.weight.grad.data())
            {
                assert!(
                    (a - b).abs() < 1e-5 * (1.0 + b.abs()),
                    "dW {a} vs {b} [{ctx}]"
                );
            }
            for (a, b) in gemm_conv
                .bias
                .grad
                .data()
                .iter()
                .zip(direct_conv.bias.grad.data())
            {
                assert!(
                    (a - b).abs() < 1e-5 * (1.0 + b.abs()),
                    "db {a} vs {b} [{ctx}]"
                );
            }
        }
    }

    /// Repeated backward over a single forward keeps working (the
    /// backward restores its input cache, and the cols cache survives).
    #[test]
    fn backward_twice_accumulates() {
        let mut conv = Conv2d::new(2, 2, 3, 1, 1, 5);
        let x = Tensor::randn(&[2, 2, 4, 4], 6);
        let y = conv.forward(&x);
        let g = Tensor::full(y.shape(), 0.5);
        conv.zero_grad();
        let gx1 = conv.backward(&g);
        let dw1 = conv.weight.grad.clone();
        let gx2 = conv.backward(&g);
        assert_eq!(gx1, gx2);
        for (a, b) in conv.weight.grad.data().iter().zip(dw1.data()) {
            assert!((a - 2.0 * b).abs() < 1e-4 * (1.0 + b.abs()), "{a} vs 2·{b}");
        }
    }

    #[test]
    fn eval_mode_forward_keeps_no_grad_cache() {
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, 8);
        // Batched and single-sample paths both skip the cache in eval.
        conv.set_training(false);
        let _ = conv.forward(&Tensor::randn(&[4, 2, 5, 5], 1));
        assert!(!conv.has_grad_cache());
        let _ = conv.forward(&Tensor::randn(&[1, 2, 5, 5], 2));
        assert!(!conv.has_grad_cache());
        // Back in training mode the cache returns.
        conv.set_training(true);
        let _ = conv.forward(&Tensor::randn(&[4, 2, 5, 5], 3));
        assert!(conv.has_grad_cache());
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_after_eval_forward_panics() {
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, 9);
        conv.set_training(false);
        let y = conv.forward(&Tensor::randn(&[2, 1, 4, 4], 1));
        let _ = conv.backward(&Tensor::full(y.shape(), 1.0));
    }

    #[test]
    fn param_count_formula() {
        let mut conv = Conv2d::new(3, 8, 3, 1, 1, 1);
        assert_eq!(conv.num_params(), 3 * 8 * 9 + 8);
    }
}
