//! 2-D convolution (direct algorithm).

use crate::init::kaiming_uniform;
use crate::module::{Module, Param};
use crate::tensor::Tensor;

/// 2-D convolution over `[N, C, H, W]` inputs with square kernels.
///
/// ```
/// use omniboost_tensor::{Conv2d, Module, Tensor};
///
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, 42);
/// let y = conv.forward(&Tensor::randn(&[2, 3, 11, 40], 1));
/// assert_eq!(y.shape(), &[2, 8, 11, 40]);
/// ```
pub struct Conv2d {
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    /// `[out_ch, in_ch, k, k]`.
    weight: Param,
    /// `[out_ch]`.
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a Kaiming-initialized convolution.
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        seed: u64,
    ) -> Self {
        let fan_in = in_ch * kernel * kernel;
        Self {
            in_ch,
            out_ch,
            kernel,
            stride,
            pad,
            weight: Param::new(kaiming_uniform(
                &[out_ch, in_ch, kernel, kernel],
                fan_in,
                seed,
            )),
            bias: Param::new(Tensor::zeros(&[out_ch])),
            cached_input: None,
        }
    }

    fn out_extent(&self, inp: usize) -> usize {
        (inp + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Batched im2col/GEMM-structured forward for `N > 1`.
    ///
    /// Lowers the input into a `[C·k·k, N·OH·OW]` column matrix once, then
    /// accumulates one tap row at a time into a `[OC, N·OH·OW]` buffer
    /// whose inner runs are `N·OH·OW` long — versus `OW` in the direct
    /// kernel — so the multiply-adds vectorize across the whole batch.
    /// This is the structural speedup batching buys: same FLOPs, far
    /// fewer short loops.
    ///
    /// Numerical contract: taps accumulate in the same `(ic, ky, kx)`
    /// order onto the bias as the direct kernel, so outputs are
    /// bit-identical except that padded positions contribute an explicit
    /// `w·0.0` instead of being skipped (can flip a `-0.0` to `+0.0`,
    /// never a value change).
    fn forward_batched_gemm(&self, n: usize, c: usize, h: usize, w: usize, x: &[f32]) -> Tensor {
        let (oh, ow) = (self.out_extent(h), self.out_extent(w));
        let k = self.kernel;
        let s = self.stride;
        let pad = self.pad as isize;
        let spatial = oh * ow;
        let cols_w = n * spatial;
        let kk = c * k * k;
        // im2col: cols[(ic·k+ky)·k+kx][ni·spatial + oy·ow + ox] = x value
        // under that tap (0.0 in the padding ring).
        let mut cols = vec![0.0f32; kk * cols_w];
        for ic in 0..c {
            for ky in 0..k {
                for kx in 0..k {
                    let row_base = (((ic * k) + ky) * k + kx) * cols_w;
                    for ni in 0..n {
                        let xplane = &x[((ni * c + ic) * h) * w..((ni * c + ic) * h + h) * w];
                        for oy in 0..oh {
                            let iy = (oy * s + ky) as isize - pad;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let xrow = &xplane[(iy as usize) * w..(iy as usize + 1) * w];
                            let dst = &mut cols[row_base + ni * spatial + oy * ow..][..ow];
                            if s == 1 {
                                let off = kx as isize - pad;
                                let lo = (-off).max(0) as usize;
                                let hi = ow.min((w as isize - off).max(0) as usize);
                                if lo < hi {
                                    dst[lo..hi].copy_from_slice(
                                        &xrow[(lo as isize + off) as usize
                                            ..(hi as isize + off) as usize],
                                    );
                                }
                            } else {
                                for (ox, d) in dst.iter_mut().enumerate() {
                                    let ix = (ox * s + kx) as isize - pad;
                                    if ix >= 0 && ix < w as isize {
                                        *d = xrow[ix as usize];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        // Rank-1 tap accumulation onto the bias, then scatter back to the
        // [N, OC, OH, OW] layout.
        let wt = self.weight.value.data();
        let b = self.bias.value.data();
        let mut out = Tensor::zeros(&[n, self.out_ch, oh, ow]);
        let od = out.data_mut();
        let mut acc = vec![0.0f32; cols_w];
        for oc in 0..self.out_ch {
            acc.fill(b[oc]);
            for row in 0..kk {
                let wv = wt[oc * kk + row];
                if wv == 0.0 {
                    continue;
                }
                let col_row = &cols[row * cols_w..(row + 1) * cols_w];
                for (a, v) in acc.iter_mut().zip(col_row) {
                    *a += wv * v;
                }
            }
            for ni in 0..n {
                od[((ni * self.out_ch + oc) * oh) * ow..][..spatial]
                    .copy_from_slice(&acc[ni * spatial..(ni + 1) * spatial]);
            }
        }
        out
    }
}

impl Module for Conv2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let [n, c, h, w] = match *input.shape() {
            [n, c, h, w] => [n, c, h, w],
            _ => panic!("Conv2d expects [N, C, H, W] input"),
        };
        assert_eq!(c, self.in_ch, "input channel mismatch");
        if n > 1 {
            let out = self.forward_batched_gemm(n, c, h, w, input.data());
            self.cached_input = Some(input.clone());
            return out;
        }
        let (oh, ow) = (self.out_extent(h), self.out_extent(w));
        let mut out = Tensor::zeros(&[n, self.out_ch, oh, ow]);
        let x = input.data();
        let wt = self.weight.value.data();
        let b = self.bias.value.data();
        let od = out.data_mut();
        let k = self.kernel;
        let s = self.stride;
        let pad = self.pad as isize;
        for ni in 0..n {
            for oc in 0..self.out_ch {
                // Bias initialization for the whole output plane.
                let obase = ((ni * self.out_ch + oc) * oh) * ow;
                od[obase..obase + oh * ow].fill(b[oc]);
                // Accumulate one (ic, ky, kx) tap at a time; the inner ox
                // loop is a contiguous shifted multiply-add, which the
                // compiler vectorizes.
                for ic in 0..c {
                    let xplane = &x[((ni * c + ic) * h) * w..((ni * c + ic) * h + h) * w];
                    for ky in 0..k {
                        for kx in 0..k {
                            let wv = wt[((oc * c + ic) * k + ky) * k + kx];
                            if wv == 0.0 {
                                continue;
                            }
                            for oy in 0..oh {
                                let iy = (oy * s + ky) as isize - pad;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                let xrow = &xplane[(iy as usize) * w..(iy as usize + 1) * w];
                                let orow = &mut od[obase + oy * ow..obase + (oy + 1) * ow];
                                if s == 1 {
                                    // Stride-1 fast path: the in-bounds ox
                                    // range is contiguous, so hoist the
                                    // bounds check out of the inner loop
                                    // and let it vectorize. Accumulation
                                    // order is unchanged (out-of-range ox
                                    // never contributed), keeping results
                                    // bitwise identical to the branchy
                                    // general case below.
                                    let off = kx as isize - pad; // ix = ox + off
                                    let lo = (-off).max(0) as usize;
                                    let hi = ow.min((w as isize - off).max(0) as usize);
                                    if lo < hi {
                                        let xseg = &xrow[(lo as isize + off) as usize
                                            ..(hi as isize + off) as usize];
                                        for (o, xv) in orow[lo..hi].iter_mut().zip(xseg) {
                                            *o += wv * xv;
                                        }
                                    }
                                } else {
                                    for (ox, o) in orow.iter_mut().enumerate() {
                                        let ix = (ox * s + kx) as isize - pad;
                                        if ix >= 0 && ix < w as isize {
                                            *o += wv * xrow[ix as usize];
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        self.cached_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        let [n, c, h, w] = match *input.shape() {
            [n, c, h, w] => [n, c, h, w],
            _ => unreachable!(),
        };
        let (oh, ow) = (self.out_extent(h), self.out_extent(w));
        assert_eq!(grad_output.shape(), &[n, self.out_ch, oh, ow]);
        let x = input.data();
        let g = grad_output.data();
        let wt = self.weight.value.data().to_vec();
        let k = self.kernel;
        let s = self.stride;
        let pad = self.pad as isize;

        let mut grad_input = Tensor::zeros(&[n, c, h, w]);
        {
            let dw = self.weight.grad.data_mut();
            let gi = grad_input.data_mut();
            for ni in 0..n {
                for oc in 0..self.out_ch {
                    let gbase = ((ni * self.out_ch + oc) * oh) * ow;
                    for ic in 0..c {
                        let xbase = ((ni * c + ic) * h) * w;
                        for ky in 0..k {
                            for kx in 0..k {
                                let wi = ((oc * c + ic) * k + ky) * k + kx;
                                let wv = wt[wi];
                                let mut dw_acc = 0.0f32;
                                for oy in 0..oh {
                                    let iy = (oy * s + ky) as isize - pad;
                                    if iy < 0 || iy >= h as isize {
                                        continue;
                                    }
                                    let grow = &g[gbase + oy * ow..gbase + (oy + 1) * ow];
                                    let xrow_base = xbase + (iy as usize) * w;
                                    for (ox, gv) in grow.iter().enumerate() {
                                        let ix = (ox * s + kx) as isize - pad;
                                        if ix >= 0 && ix < w as isize {
                                            let xi = xrow_base + ix as usize;
                                            dw_acc += gv * x[xi];
                                            gi[xi] += gv * wv;
                                        }
                                    }
                                }
                                dw[wi] += dw_acc;
                            }
                        }
                    }
                }
            }
        }
        {
            let db = self.bias.grad.data_mut();
            for ni in 0..n {
                for oc in 0..self.out_ch {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            db[oc] += g[((ni * self.out_ch + oc) * oh + oy) * ow + ox];
                        }
                    }
                }
            }
        }
        grad_input
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{Loss, MseLoss};

    #[test]
    fn identity_kernel_passes_through() {
        // 1x1 conv, weight = identity over channels.
        let mut conv = Conv2d::new(2, 2, 1, 1, 0, 1);
        conv.weight.value = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2, 1, 1]);
        let x = Tensor::randn(&[1, 2, 3, 3], 2);
        let y = conv.forward(&x);
        for (a, b) in x.data().iter().zip(y.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn stride_and_pad_shape_math() {
        let mut conv = Conv2d::new(1, 4, 3, 2, 1, 1);
        let y = conv.forward(&Tensor::zeros(&[1, 1, 11, 40]));
        assert_eq!(y.shape(), &[1, 4, 6, 20]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, 13);
        let x = Tensor::randn(&[2, 2, 4, 4], 5);
        let target = Tensor::randn(&[2, 3, 4, 4], 6);

        let y = conv.forward(&x);
        let (_, grad) = MseLoss.compute(&y, &target);
        conv.zero_grad();
        let gx = conv.backward(&grad);

        let eps = 1e-2f32;
        let analytic_w = conv.weight.grad.clone();
        // Spot-check a spread of weight coordinates.
        for idx in [0usize, 7, 13, 26, 53] {
            let orig = conv.weight.value.data()[idx];
            conv.weight.value.data_mut()[idx] = orig + eps;
            let (lp, _) = MseLoss.compute(&conv.forward(&x), &target);
            conv.weight.value.data_mut()[idx] = orig - eps;
            let (lm, _) = MseLoss.compute(&conv.forward(&x), &target);
            conv.weight.value.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic_w.data()[idx];
            assert!((numeric - a).abs() < 3e-2, "w[{idx}]: {numeric} vs {a}");
        }
        // Spot-check input gradient.
        for idx in [0usize, 9, 31] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let (lp, _) = MseLoss.compute(&conv.forward(&xp), &target);
            xp.data_mut()[idx] -= 2.0 * eps;
            let (lm, _) = MseLoss.compute(&conv.forward(&xp), &target);
            let numeric = (lp - lm) / (2.0 * eps);
            let a = gx.data()[idx];
            assert!((numeric - a).abs() < 3e-2, "x[{idx}]: {numeric} vs {a}");
        }
    }

    #[test]
    fn param_count_formula() {
        let mut conv = Conv2d::new(3, 8, 3, 1, 1, 1);
        assert_eq!(conv.num_params(), 3 * 8 * 9 + 8);
    }
}
