//! Dense `f32` tensors with shape bookkeeping.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major `f32` tensor.
///
/// ```
/// use omniboost_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// assert_eq!(t.get(&[1, 0]), 3.0);
/// assert_eq!(t.sum(), 10.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// All-zero tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        let n = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; n],
        }
    }

    /// Tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![value; n],
        }
    }

    /// Standard-normal random tensor (Box–Muller over a seeded RNG, so
    /// construction is reproducible).
    pub fn randn(shape: &[usize], seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n: usize = shape.iter().product();
        let data = (0..n)
            .map(|_| {
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
            })
            .collect();
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Builds a tensor from a flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "buffer length must match shape"
        );
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable flat view.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat view.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Flat offset of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.shape.len(), "index rank mismatch");
        let mut off = 0usize;
        for (i, (&ix, &dim)) in index.iter().zip(&self.shape).enumerate() {
            assert!(
                ix < dim,
                "index {ix} out of bounds for axis {i} (dim {dim})"
            );
            off = off * dim + ix;
        }
        off
    }

    /// Element at a multi-index.
    pub fn get(&self, index: &[usize]) -> f32 {
        self.data[self.offset(index)]
    }

    /// Sets the element at a multi-index.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.offset(index);
        self.data[off] = value;
    }

    /// Reinterprets the buffer under a new shape with the same element
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            self.len(),
            shape.iter().product::<usize>(),
            "reshape must preserve element count"
        );
        Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        }
    }

    /// Element-wise sum with another tensor of identical shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// In-place element-wise accumulate.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise product with a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Largest absolute element (0.0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Resets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?} (n={})", self.shape, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offset_is_row_major() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.offset(&[0, 0, 0]), 0);
        assert_eq!(t.offset(&[0, 0, 3]), 3);
        assert_eq!(t.offset(&[0, 1, 0]), 4);
        assert_eq!(t.offset(&[1, 0, 0]), 12);
        assert_eq!(t.offset(&[1, 2, 3]), 23);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_checks_bounds() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t.offset(&[0, 2]);
    }

    #[test]
    fn randn_is_seeded_and_roughly_normal() {
        let a = Tensor::randn(&[1000], 7);
        let b = Tensor::randn(&[1000], 7);
        assert_eq!(a, b);
        let mean = a.mean();
        assert!(mean.abs() < 0.15, "mean = {mean}");
        let var: f32 = a.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 1000.0;
        assert!((0.7..1.3).contains(&var), "var = {var}");
    }

    #[test]
    fn arithmetic_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]);
        assert_eq!(a.add(&b).data(), &[4.0, 7.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
        assert_eq!(a.hadamard(&b).data(), &[3.0, 10.0]);
        assert_eq!(b.max_abs(), 5.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let r = a.reshape(&[4]);
        assert_eq!(r.data(), a.data());
        assert_eq!(r.shape(), &[4]);
    }

    #[test]
    #[should_panic(expected = "preserve element count")]
    fn reshape_rejects_bad_count() {
        let _ = Tensor::zeros(&[2, 2]).reshape(&[3]);
    }
}
