//! Packed, register-blocked `f32` matrix kernels — the shared GEMM core
//! behind every batched forward *and* backward pass.
//!
//! Three multiply shapes cover the whole training hot path:
//!
//! * [`gemm_nn`] — `C += A·B`. Conv/linear forward (`out = W·cols`,
//!   `y = G·W`) and the linear input gradient. The per-element
//!   accumulation starts from the existing `C` value and walks `k` in
//!   ascending order, so with `C` pre-filled with the bias the result is
//!   **bit-identical** to the seed's sequential tap loop (the contract
//!   the batched-vs-scalar 1e-9 equivalence tests rely on).
//! * [`gemm_nt`] — `C += A·Bᵀ`. The weight gradients (`dW = G·colsᵀ`,
//!   `dW = Gᵀ·X` transposed): tiny output, huge reduction dimension.
//!   Uses lane-blocked partial sums (deterministic, but *not* the
//!   sequential order — gradient consumers tolerate ≤1e-5).
//! * [`gemm_tn`] — `C += Aᵀ·B`. The lowered input gradient
//!   (`dcols = Wᵀ·G`): rank-1 updates tiled over the wide axis.
//!
//! All kernels are allocation-free given a caller-held [`GemmScratch`]
//! (the packing buffers), which the conv/linear modules reuse across
//! steps — one piece of the PR's "no per-call allocations" budget.

/// Micro-kernel row count (A-panel height).
const MR: usize = 4;
/// Micro-kernel column count (B-panel width) — 16 `f32`s = two AVX (or
/// four SSE) vectors, putting the `MR×NR` accumulator block at 8 AVX
/// registers: half the architectural register file, leaving room for
/// the broadcast value and the B panel loads.
const NR: usize = 16;
/// Lane count for the dot-product kernel ([`gemm_nt`]) — 16 `f32`s =
/// two AVX vectors per accumulator, giving eight independent add chains
/// across the four accumulators to hide floating-point latency.
const LANES: usize = 16;
/// Column tile width for the rank-1 kernel ([`gemm_tn`]): 512 floats =
/// 2 KiB per row, so a whole `k × TW` B-tile stays cache-resident while
/// every C row crosses it.
const TW: usize = 512;
/// Cache budget (bytes) for one [`gemm_nt`] reduction chunk: the `m` A
/// rows plus `n` B rows restricted to the chunk must fit comfortably in
/// L2 alongside the (tiny) C block, so conservatively half of a small
/// 512 KiB L2.
const NT_CHUNK_BYTES: usize = 256 * 1024;

/// Reusable packing buffers for [`gemm_nn`]. Hold one per module and the
/// kernels never allocate after the first call at a given size.
#[derive(Debug, Default, Clone)]
pub struct GemmScratch {
    apack: Vec<f32>,
    bpack: Vec<f32>,
}

/// `C[m×n] += A[m×k] · B[k×n]`, row-major.
///
/// Numerical contract: every output element accumulates its `k` products
/// in ascending order on top of the *existing* `C` value, exactly like a
/// naive `for kk { c += a*b }` loop — register blocking changes which
/// elements are computed together, never the per-element operation
/// sequence. Callers pre-fill `C` with the bias (or zeros) and get
/// bitwise-reproducible results regardless of `m`/`n` blocking.
///
/// # Panics
///
/// Panics if any slice is shorter than its `m`/`k`/`n` extent implies.
pub fn gemm_nn(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    scratch: &mut GemmScratch,
) {
    assert!(a.len() >= m * k, "A too short");
    assert!(b.len() >= k * n, "B too short");
    assert!(c.len() >= m * n, "C too short");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        return; // C += 0 contribution.
    }
    // Pack A once per call: per MR-row block, k-major with the MR rows
    // interleaved (`apack[(block*k + kk)*MR + r]`), zero-padded so the
    // micro-kernel always reads full MR-wide slabs.
    let mblocks = m.div_ceil(MR);
    scratch.apack.clear();
    scratch.apack.resize(mblocks * k * MR, 0.0);
    for ib in 0..mblocks {
        let base = ib * k * MR;
        for r in 0..MR {
            let row = ib * MR + r;
            if row >= m {
                break;
            }
            let arow = &a[row * k..row * k + k];
            for (kk, &av) in arow.iter().enumerate() {
                scratch.apack[base + kk * MR + r] = av;
            }
        }
    }
    // March over NR-wide column tiles; pack the B tile contiguously
    // (k-major, zero-padded to NR) and reuse it for every A block.
    scratch.bpack.clear();
    scratch.bpack.resize(k * NR, 0.0);
    let mut j0 = 0usize;
    while j0 < n {
        let nr = NR.min(n - j0);
        for kk in 0..k {
            let brow = &b[kk * n + j0..kk * n + j0 + nr];
            let dst = &mut scratch.bpack[kk * NR..kk * NR + NR];
            dst[..nr].copy_from_slice(brow);
            for d in dst[nr..].iter_mut() {
                *d = 0.0;
            }
        }
        for ib in 0..mblocks {
            let mr = MR.min(m - ib * MR);
            let apanel = &scratch.apack[ib * k * MR..(ib + 1) * k * MR];
            microkernel(
                mr,
                nr,
                apanel,
                &scratch.bpack,
                &mut c[(ib * MR) * n + j0..],
                n,
            );
        }
        j0 += nr;
    }
}

/// The `MR×NR` register-tile inner loop: loads the live `mr×nr` corner of
/// `C`, accumulates all `k` slabs in order, stores it back.
fn microkernel(mr: usize, nr: usize, ap: &[f32], bp: &[f32], c: &mut [f32], ldc: usize) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, acc_row) in acc.iter_mut().enumerate().take(mr) {
        acc_row[..nr].copy_from_slice(&c[r * ldc..r * ldc + nr]);
    }
    for (ak, bk) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        // Full MR×NR update: rows beyond `mr` accumulate padded zeros
        // into dead accumulators, which keeps this loop branch-free.
        for (acc_row, &av) in acc.iter_mut().zip(ak) {
            for (av_acc, &bv) in acc_row.iter_mut().zip(bk) {
                *av_acc += av * bv;
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate().take(mr) {
        c[r * ldc..r * ldc + nr].copy_from_slice(&acc_row[..nr]);
    }
}

/// `C[m×n] += A[m×k] · Bᵀ` with `B` stored row-major as `[n×k]` — the
/// dot-product shape (`dW = G·colsᵀ`), where `m`/`n` are small and `k` is
/// the huge batched-spatial axis.
///
/// The reduction axis is walked in **cache-resident chunks**: a chunk
/// width is chosen so the `m + n` active row slices fit in
/// [`NT_CHUNK_BYTES`], and all `m/2 × n/2` output tiles consume one
/// chunk before the next is touched. Without the chunking every i-pair
/// streamed the entire `n×k` B matrix from DRAM (`m/2` full passes over
/// an axis that can run to millions of floats); with it, each A/B
/// element is read from DRAM exactly once and re-read from cache
/// thereafter.
///
/// Each dot product uses [`LANES`] parallel partial sums reduced
/// pairwise per chunk, with chunk subtotals accumulated into `C` in
/// ascending-k order: deterministic for a given `k`, and identical for
/// every row, but not the strict sequential order (the gradient
/// consumers tolerate far looser than the ~1e-7 relative difference
/// blocking introduces — blocked sums are, if anything, more accurate).
///
/// # Panics
///
/// Panics if any slice is shorter than its extents imply.
pub fn gemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= m * k, "A too short");
    assert!(b.len() >= n * k, "B too short");
    assert!(c.len() >= m * n, "C too short");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // Chunk width: whole LANES multiples, at least one vector block, at
    // most the full axis (small k degenerates to the unchunked loop).
    let budget = NT_CHUNK_BYTES / (core::mem::size_of::<f32>() * (m + n));
    let kc = (budget / LANES * LANES)
        .max(LANES)
        .min(k.next_multiple_of(LANES));
    let mut k0 = 0usize;
    while k0 < k {
        let kw = kc.min(k - k0);
        // 2×2 output tile: four dot products share the two resident A
        // row slices and two resident B row slices.
        let mut i = 0usize;
        while i < m {
            let two_i = i + 1 < m;
            let (a0, a1) = (
                &a[i * k + k0..i * k + k0 + kw],
                &a[if two_i { i + 1 } else { i } * k + k0..][..kw],
            );
            let mut j = 0usize;
            while j < n {
                let two_j = j + 1 < n;
                let b0 = &b[j * k + k0..j * k + k0 + kw];
                let b1 = &b[if two_j { j + 1 } else { j } * k + k0..][..kw];
                let (d00, d01, d10, d11) = dot2x2(a0, a1, b0, b1);
                c[i * n + j] += d00;
                if two_j {
                    c[i * n + j + 1] += d01;
                }
                if two_i {
                    c[(i + 1) * n + j] += d10;
                    if two_j {
                        c[(i + 1) * n + j + 1] += d11;
                    }
                }
                j += 2;
            }
            i += 2;
        }
        k0 += kw;
    }
}

/// Four simultaneous lane-blocked dot products over equal-length rows.
fn dot2x2(a0: &[f32], a1: &[f32], b0: &[f32], b1: &[f32]) -> (f32, f32, f32, f32) {
    let k = a0.len();
    let mut l00 = [0.0f32; LANES];
    let mut l01 = [0.0f32; LANES];
    let mut l10 = [0.0f32; LANES];
    let mut l11 = [0.0f32; LANES];
    let chunks = k / LANES * LANES;
    let mut idx = 0usize;
    while idx < chunks {
        // Fixed-size array views: exact lengths are visible to the
        // vectorizer and every bounds check vanishes.
        let xa0: &[f32; LANES] = a0[idx..idx + LANES].try_into().expect("exact");
        let xa1: &[f32; LANES] = a1[idx..idx + LANES].try_into().expect("exact");
        let xb0: &[f32; LANES] = b0[idx..idx + LANES].try_into().expect("exact");
        let xb1: &[f32; LANES] = b1[idx..idx + LANES].try_into().expect("exact");
        for l in 0..LANES {
            l00[l] += xa0[l] * xb0[l];
            l01[l] += xa0[l] * xb1[l];
            l10[l] += xa1[l] * xb0[l];
            l11[l] += xa1[l] * xb1[l];
        }
        idx += LANES;
    }
    let mut d = (reduce(&l00), reduce(&l01), reduce(&l10), reduce(&l11));
    for (((&xa0, &xa1), &xb0), &xb1) in a0[chunks..]
        .iter()
        .zip(&a1[chunks..])
        .zip(&b0[chunks..])
        .zip(&b1[chunks..])
    {
        d.0 += xa0 * xb0;
        d.1 += xa0 * xb1;
        d.2 += xa1 * xb0;
        d.3 += xa1 * xb1;
    }
    d
}

/// Pairwise lane reduction (fixed tree, deterministic).
fn reduce(l: &[f32; LANES]) -> f32 {
    let mut width = LANES / 2;
    let mut acc = *l;
    while width > 0 {
        for i in 0..width {
            acc[i] += acc[i + width];
        }
        width /= 2;
    }
    acc[0]
}

/// `C[m×n] += Aᵀ · B` with `A` stored row-major as `[k×m]` — the rank-1
/// shape (`dcols = Wᵀ·G`), where `k` is small (output channels) and `n`
/// is the huge batched-spatial axis.
///
/// `ldb` is B's row stride (≥ `n`), so a caller can multiply against a
/// column window of a wider matrix — the conv backward uses this to
/// produce one *sample's* lowered gradient at a time into an L2-sized
/// tile that col2im consumes while hot, instead of round-tripping the
/// full `[C·k·k, N·OH·OW]` matrix through memory.
///
/// Tiled over `n` so the `k` streamed B rows stay cache-resident while
/// all `m` C rows cross the tile; the inner update is a contiguous
/// `axpy`, which vectorizes fully. Zero `A` coefficients are skipped
/// (they contribute nothing).
///
/// # Panics
///
/// Panics if `ldb < n` or any slice is shorter than its extents imply.
pub fn gemm_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], ldb: usize, c: &mut [f32]) {
    assert!(ldb >= n, "B row stride below row width");
    assert!(a.len() >= k * m, "A too short");
    assert!(k == 0 || b.len() >= (k - 1) * ldb + n, "B too short");
    assert!(c.len() >= m * n, "C too short");
    let mut j0 = 0usize;
    while j0 < n {
        let w = TW.min(n - j0);
        for i in 0..m {
            let crow = &mut c[i * n + j0..i * n + j0 + w];
            // Four rank-1 updates per pass: quarters the C-row
            // read/write traffic and gives the vectorizer independent
            // products to overlap.
            let mut p = 0usize;
            while p + 4 <= k {
                let (a0, a1, a2, a3) = (
                    a[p * m + i],
                    a[(p + 1) * m + i],
                    a[(p + 2) * m + i],
                    a[(p + 3) * m + i],
                );
                let b0 = &b[p * ldb + j0..p * ldb + j0 + w];
                let b1 = &b[(p + 1) * ldb + j0..(p + 1) * ldb + j0 + w];
                let b2 = &b[(p + 2) * ldb + j0..(p + 2) * ldb + j0 + w];
                let b3 = &b[(p + 3) * ldb + j0..(p + 3) * ldb + j0 + w];
                for (j, cv) in crow.iter_mut().enumerate() {
                    *cv += (a0 * b0[j] + a1 * b1[j]) + (a2 * b2[j] + a3 * b3[j]);
                }
                p += 4;
            }
            while p < k {
                let av = a[p * m + i];
                if av != 0.0 {
                    let brow = &b[p * ldb + j0..p * ldb + j0 + w];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += av * bv;
                    }
                }
                p += 1;
            }
        }
        j0 += w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn randv(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
    }

    fn naive_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = c[i * n + j];
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                c[i * n + j] = acc;
            }
        }
    }

    #[test]
    fn nn_matches_naive_bitwise_across_odd_shapes() {
        let mut scratch = GemmScratch::default();
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (4, 8, 8), (5, 27, 33), (24, 216, 130)] {
            let a = randv(m * k, 1);
            let b = randv(k * n, 2);
            let init = randv(m * n, 3); // non-zero init: the bias contract
            let mut c = init.clone();
            let mut reference = init.clone();
            gemm_nn(m, k, n, &a, &b, &mut c, &mut scratch);
            naive_nn(m, k, n, &a, &b, &mut reference);
            assert_eq!(c, reference, "shape ({m},{k},{n}) must be bit-identical");
        }
    }

    #[test]
    fn nt_matches_naive_to_tolerance() {
        for &(m, k, n) in &[(1, 3, 1), (2, 100, 3), (5, 1031, 9), (16, 2048, 72)] {
            let a = randv(m * k, 4);
            let b = randv(n * k, 5);
            let mut c = randv(m * n, 6);
            let reference: Vec<f32> = (0..m * n)
                .map(|ij| {
                    let (i, j) = (ij / n, ij % n);
                    let dot: f64 = (0..k)
                        .map(|p| f64::from(a[i * k + p]) * f64::from(b[j * k + p]))
                        .sum();
                    c[ij] + dot as f32
                })
                .collect();
            gemm_nt(m, k, n, &a, &b, &mut c);
            for (x, y) in c.iter().zip(&reference) {
                assert!((x - y).abs() < 1e-3 * (1.0 + y.abs()), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn tn_matches_naive_to_tolerance() {
        for &(m, k, n) in &[(1, 1, 3), (9, 4, 600), (72, 16, 1300)] {
            let a = randv(k * m, 7);
            let b = randv(k * n, 8);
            let mut c = randv(m * n, 9);
            let reference: Vec<f32> = (0..m * n)
                .map(|ij| {
                    let (i, j) = (ij / n, ij % n);
                    let dot: f64 = (0..k)
                        .map(|p| f64::from(a[p * m + i]) * f64::from(b[p * n + j]))
                        .sum();
                    c[ij] + dot as f32
                })
                .collect();
            gemm_tn(m, k, n, &a, &b, n, &mut c);
            for (x, y) in c.iter().zip(&reference) {
                assert!((x - y).abs() < 1e-3 * (1.0 + y.abs()), "{x} vs {y}");
            }
        }
    }

    /// A reduction axis long enough to straddle several cache-resident
    /// chunks still matches the f64 reference: chunk subtotals accumulate
    /// in ascending-k order, so splitting the axis must stay within the
    /// blocked-summation tolerance.
    #[test]
    fn nt_chunked_reduction_matches_naive() {
        // m + n = 4 → chunk width ≈ NT_CHUNK_BYTES/16 = 16384 floats;
        // k = 50_000 spans four chunks including a ragged tail.
        let (m, k, n) = (2usize, 50_000usize, 2usize);
        let a = randv(m * k, 12);
        let b = randv(n * k, 13);
        let mut c = vec![0.0f32; m * n];
        let reference: Vec<f32> = (0..m * n)
            .map(|ij| {
                let (i, j) = (ij / n, ij % n);
                (0..k)
                    .map(|p| f64::from(a[i * k + p]) * f64::from(b[j * k + p]))
                    .sum::<f64>() as f32
            })
            .collect();
        gemm_nt(m, k, n, &a, &b, &mut c);
        for (x, y) in c.iter().zip(&reference) {
            assert!((x - y).abs() < 1e-2 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    /// A strided B window (ldb > n) multiplies the same as slicing the
    /// columns out densely.
    #[test]
    fn tn_strided_window_matches_dense() {
        let (m, k, n, ldb, off) = (5usize, 3usize, 7usize, 20usize, 6usize);
        let a = randv(k * m, 10);
        let wide = randv(k * ldb, 11);
        // Dense copy of the window's columns.
        let mut dense = Vec::with_capacity(k * n);
        for p in 0..k {
            dense.extend_from_slice(&wide[p * ldb + off..p * ldb + off + n]);
        }
        let mut c_strided = vec![0.0f32; m * n];
        let mut c_dense = vec![0.0f32; m * n];
        gemm_tn(m, k, n, &a, &wide[off..], ldb, &mut c_strided);
        gemm_tn(m, k, n, &a, &dense, n, &mut c_dense);
        assert_eq!(c_strided, c_dense);
    }

    #[test]
    fn empty_extents_are_noops() {
        let mut scratch = GemmScratch::default();
        let mut c = vec![1.0f32; 4];
        gemm_nn(0, 3, 2, &[], &[0.0; 6], &mut c, &mut scratch);
        gemm_nn(2, 0, 2, &[], &[], &mut c, &mut scratch);
        gemm_nt(2, 0, 2, &[], &[], &mut c);
        gemm_tn(2, 0, 2, &[], &[], 2, &mut c);
        assert_eq!(c, vec![1.0; 4]);
    }
}
