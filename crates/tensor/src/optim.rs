//! First-order optimizers.

use crate::module::Param;

/// A parameter-update rule applied after each backward pass.
pub trait Optimizer {
    /// Applies one update step to the given parameters.
    ///
    /// The same parameter list (in the same order) must be passed on every
    /// step — stateful optimizers key their moment buffers by position.
    fn step(&mut self, params: &mut [&mut Param]);
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0.0 disables momentum).
    pub momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates momentum-free SGD.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Adds classical momentum.
    #[must_use]
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|p| vec![0.0; p.len()]).collect();
        }
        for (p, v) in params.iter_mut().zip(self.velocity.iter_mut()) {
            let g = p.grad.data().to_vec();
            for ((w, vi), gi) in p.value.data_mut().iter_mut().zip(v.iter_mut()).zip(&g) {
                *vi = self.momentum * *vi + gi;
                *w -= self.lr * *vi;
            }
        }
    }
}

/// Adam (Kingma & Ba) with PyTorch-default hyper-parameters.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates Adam with β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.len() != params.len() {
            self.m = params.iter().map(|p| vec![0.0; p.len()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.len()]).collect();
            self.t = 0;
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params
            .iter_mut()
            .zip(self.m.iter_mut())
            .zip(self.v.iter_mut())
        {
            let g = p.grad.data().to_vec();
            for (((w, mi), vi), gi) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(m.iter_mut())
                .zip(v.iter_mut())
                .zip(&g)
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
                let mhat = *mi / b1t;
                let vhat = *vi / b2t;
                *w -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{Loss, MseLoss};
    use crate::module::Module;
    use crate::ops::linear::Linear;
    use crate::tensor::Tensor;

    fn fit<O: Optimizer>(mut opt: O, steps: usize) -> f32 {
        // Learn y = 2x + 1 from noise-free samples.
        let mut layer = Linear::new(1, 1, 3);
        let x = Tensor::from_vec(vec![-1.0, 0.0, 1.0, 2.0], &[4, 1]);
        let t = Tensor::from_vec(vec![-1.0, 1.0, 3.0, 5.0], &[4, 1]);
        let mut last = f32::MAX;
        for _ in 0..steps {
            let y = layer.forward(&x);
            let (loss, grad) = MseLoss.compute(&y, &t);
            layer.zero_grad();
            layer.backward(&grad);
            opt.step(&mut layer.params_mut());
            last = loss;
        }
        last
    }

    #[test]
    fn sgd_converges_on_linear_fit() {
        assert!(fit(Sgd::new(0.1), 400) < 1e-3);
    }

    #[test]
    fn sgd_momentum_converges() {
        assert!(fit(Sgd::new(0.05).with_momentum(0.9), 400) < 1e-3);
    }

    #[test]
    fn adam_converges_on_linear_fit() {
        assert!(fit(Adam::new(0.05), 500) < 1e-3);
    }

    #[test]
    fn adam_is_scale_robust() {
        // Adam should make progress even with a tiny learning rate thanks
        // to per-parameter normalization.
        assert!(fit(Adam::new(0.01), 1500) < 1e-2);
    }
}
