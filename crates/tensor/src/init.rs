//! Weight initialization.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Kaiming (He) uniform initialization: samples from
/// `U(-b, b)` with `b = sqrt(6 / fan_in)`, the PyTorch default for conv
/// and linear weights feeding ReLU-family activations.
///
/// ```
/// use omniboost_tensor::kaiming_uniform;
///
/// let w = kaiming_uniform(&[16, 8, 3, 3], 8 * 3 * 3, 42);
/// let bound = (6.0f32 / (8.0 * 9.0)).sqrt();
/// assert!(w.data().iter().all(|v| v.abs() <= bound));
/// ```
pub fn kaiming_uniform(shape: &[usize], fan_in: usize, seed: u64) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let bound = (6.0f32 / fan_in as f32).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| rng.gen_range(-bound..bound)).collect();
    Tensor::from_vec(data, shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_shrinks_with_fan_in() {
        let wide = kaiming_uniform(&[4, 100], 100, 1);
        let narrow = kaiming_uniform(&[4, 4], 4, 1);
        assert!(wide.max_abs() < narrow.max_abs() + 0.8);
        assert!(wide.max_abs() <= (6.0f32 / 100.0).sqrt());
    }

    #[test]
    fn seeded_reproducibility() {
        assert_eq!(
            kaiming_uniform(&[3, 3], 3, 5),
            kaiming_uniform(&[3, 3], 3, 5)
        );
    }

    #[test]
    #[should_panic(expected = "fan_in must be positive")]
    fn zero_fan_in_panics() {
        let _ = kaiming_uniform(&[1], 0, 1);
    }
}
