//! # omniboost-tensor
//!
//! A minimal, from-scratch tensor and neural-network library — the
//! reproduction's substitute for PyTorch, which the paper uses to build
//! and train its ~20k-parameter CNN throughput estimator (§IV-B, §V).
//!
//! Scope is deliberately exactly what the estimator needs:
//!
//! * dense [`Tensor`]s of `f32` with shape bookkeeping;
//! * a shared packed, register-blocked GEMM core ([`gemm`]) behind the
//!   batched convolution/linear forward *and* backward passes;
//! * forward/backward [`Module`]s: [`Conv2d`], [`Linear`], [`Gelu`],
//!   [`Relu`], [`MaxPool2d`], [`GlobalAvgPool`], [`Flatten`],
//!   [`ResidualBlock`] and [`Sequential`] composition — with a
//!   train/eval mode switch ([`Module::set_training`]) so serving-path
//!   forwards keep no gradient caches;
//! * [`L1Loss`]/[`MseLoss`] criteria (the paper trains with L1 and reports
//!   L2 as "too aggressive");
//! * [`Sgd`] and [`Adam`] optimizers.
//!
//! Backpropagation is implemented per-module (each module caches its
//! forward activations in training mode), which keeps gradients easy to
//! verify against finite differences — the test suite does exactly that
//! for every module, and additionally property-tests the GEMM-structured
//! batched backward against the direct reference kernels.
//!
//! ```
//! use omniboost_tensor::{Adam, L1Loss, Linear, Loss, Module, Optimizer, Tensor};
//!
//! let mut layer = Linear::new(4, 2, 42);
//! let x = Tensor::randn(&[8, 4], 1);
//! let target = Tensor::zeros(&[8, 2]);
//! let mut opt = Adam::new(1e-2);
//! for _ in 0..10 {
//!     let y = layer.forward(&x);
//!     let (loss, grad) = L1Loss.compute(&y, &target);
//!     layer.zero_grad();
//!     layer.backward(&grad);
//!     opt.step(&mut layer.params_mut());
//!     assert!(loss.is_finite());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gemm;
mod init;
mod loss;
mod module;
pub mod ops;
mod optim;
mod tensor;

pub use gemm::{gemm_nn, gemm_nt, gemm_tn, GemmScratch};
pub use init::kaiming_uniform;
pub use loss::{L1Loss, Loss, MseLoss};
pub use module::{export_params, import_params, Module, Param, Sequential};
pub use ops::activation::{Gelu, Relu};
pub use ops::conv::Conv2d;
pub use ops::flatten::Flatten;
pub use ops::linear::Linear;
pub use ops::pool::{GlobalAvgPool, MaxPool2d};
pub use ops::residual::ResidualBlock;
pub use optim::{Adam, Optimizer, Sgd};
pub use tensor::Tensor;
