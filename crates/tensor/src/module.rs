//! The module abstraction: forward, backward, trainable parameters.

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A trainable parameter: value plus accumulated gradient.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by the latest backward pass.
    pub grad: Tensor,
}

impl Param {
    /// Wraps an initial value with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Self { value, grad }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// A differentiable network component.
///
/// `forward` caches whatever the matching `backward` needs; `backward`
/// consumes the loss gradient w.r.t. the module output and returns the
/// gradient w.r.t. the module input, accumulating parameter gradients
/// along the way.
pub trait Module {
    /// Runs the module on a batch, caching activations for backward.
    fn forward(&mut self, input: &Tensor) -> Tensor;

    /// Backpropagates `grad_output`, returning the input gradient.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before `forward`.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Mutable access to the trainable parameters (empty for stateless
    /// modules such as activations and pools).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Switches between training mode (the default: `forward` caches
    /// whatever `backward` needs) and inference mode (`forward` keeps
    /// **no** gradient caches — no input clones, no argmax maps — and a
    /// subsequent `backward` panics). Containers must propagate to their
    /// children; leaf modules without caches can ignore it.
    fn set_training(&mut self, training: bool) {
        let _ = training;
    }

    /// Selects between the GEMM-structured batched backward (the
    /// default) and the direct reference kernels — the A/B knob behind
    /// the `estimator_training` bench and the gradient-equivalence
    /// tests. Containers must propagate; modules with a single backward
    /// can ignore it.
    fn set_gemm_backward(&mut self, enabled: bool) {
        let _ = enabled;
    }

    /// Zeroes all parameter gradients.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.grad.fill_zero();
        }
    }

    /// Total scalar parameter count.
    fn num_params(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }
}

/// Sequential composition of modules.
///
/// ```
/// use omniboost_tensor::{Flatten, Linear, Module, Relu, Sequential, Tensor};
///
/// let mut net = Sequential::new()
///     .push(Flatten::new())
///     .push(Linear::new(12, 8, 1))
///     .push(Relu::new())
///     .push(Linear::new(8, 2, 2));
/// let y = net.forward(&Tensor::randn(&[4, 3, 2, 2], 3));
/// assert_eq!(y.shape(), &[4, 2]);
/// ```
#[derive(Default)]
pub struct Sequential {
    // `Send` so networks can cross thread boundaries (the estimator is
    // shared behind a mutex by the root-parallel search).
    modules: Vec<Box<dyn Module + Send>>,
}

impl Sequential {
    /// An empty pipeline.
    pub fn new() -> Self {
        Self {
            modules: Vec::new(),
        }
    }

    /// Appends a module.
    #[must_use]
    pub fn push<M: Module + Send + 'static>(mut self, module: M) -> Self {
        self.modules.push(Box::new(module));
        self
    }

    /// Number of composed modules.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Whether the pipeline is empty.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }
}

impl Module for Sequential {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        // Feed `input` to the first module by reference — cloning it here
        // would charge every training step (and every batched serving
        // query) one full minibatch copy before any work happens.
        let mut iter = self.modules.iter_mut();
        let Some(first) = iter.next() else {
            return input.clone();
        };
        let mut x = first.forward(input);
        for m in iter {
            x = m.forward(&x);
        }
        x
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut iter = self.modules.iter_mut().rev();
        let Some(last) = iter.next() else {
            return grad_output.clone();
        };
        let mut g = last.backward(grad_output);
        for m in iter {
            g = m.backward(&g);
        }
        g
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.modules
            .iter_mut()
            .flat_map(|m| m.params_mut())
            .collect()
    }

    fn set_training(&mut self, training: bool) {
        for m in self.modules.iter_mut() {
            m.set_training(training);
        }
    }

    fn set_gemm_backward(&mut self, enabled: bool) {
        for m in self.modules.iter_mut() {
            m.set_gemm_backward(enabled);
        }
    }
}

/// Snapshots a module's parameter values (in `params_mut` order).
///
/// Together with [`import_params`] this provides PyTorch-style
/// `state_dict` persistence for trained networks.
pub fn export_params<M: Module + ?Sized>(module: &mut M) -> Vec<Tensor> {
    module
        .params_mut()
        .iter()
        .map(|p| p.value.clone())
        .collect()
}

/// Restores parameter values exported by [`export_params`].
///
/// # Panics
///
/// Panics if the snapshot's length or any tensor shape disagrees with the
/// module's current parameters.
pub fn import_params<M: Module + ?Sized>(module: &mut M, snapshot: &[Tensor]) {
    let mut params = module.params_mut();
    assert_eq!(
        params.len(),
        snapshot.len(),
        "snapshot has {} tensors, module has {} parameters",
        snapshot.len(),
        params.len()
    );
    for (p, s) in params.iter_mut().zip(snapshot) {
        assert_eq!(p.value.shape(), s.shape(), "parameter shape mismatch");
        p.value = s.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::linear::Linear;

    #[test]
    fn param_counts_sum() {
        let mut net = Sequential::new()
            .push(Linear::new(3, 4, 1))
            .push(Linear::new(4, 2, 2));
        assert_eq!(net.num_params(), (3 * 4 + 4) + (4 * 2 + 2));
    }

    #[test]
    fn zero_grad_clears_all() {
        let mut net = Sequential::new().push(Linear::new(2, 2, 1));
        let x = Tensor::randn(&[1, 2], 3);
        let y = net.forward(&x);
        net.backward(&Tensor::full(y.shape(), 1.0));
        assert!(net.params_mut().iter().any(|p| p.grad.max_abs() > 0.0));
        net.zero_grad();
        assert!(net.params_mut().iter().all(|p| p.grad.max_abs() == 0.0));
    }

    #[test]
    fn export_import_roundtrips() {
        let mut a = Sequential::new()
            .push(Linear::new(3, 4, 1))
            .push(Linear::new(4, 2, 2));
        let mut b = Sequential::new()
            .push(Linear::new(3, 4, 9))
            .push(Linear::new(4, 2, 10));
        let x = Tensor::randn(&[2, 3], 5);
        assert_ne!(a.forward(&x), b.forward(&x), "different inits");
        let snapshot = export_params(&mut a);
        import_params(&mut b, &snapshot);
        assert_eq!(a.forward(&x), b.forward(&x), "identical after import");
    }

    #[test]
    #[should_panic(expected = "snapshot has")]
    fn import_rejects_wrong_length() {
        let mut m = Sequential::new().push(Linear::new(2, 2, 1));
        import_params(&mut m, &[]);
    }

    #[test]
    fn sequential_backward_reverses_order() {
        // Identity-free check: gradient flows through both linears.
        let mut net = Sequential::new()
            .push(Linear::new(2, 3, 1))
            .push(Linear::new(3, 1, 2));
        let x = Tensor::randn(&[5, 2], 9);
        let y = net.forward(&x);
        let gx = net.backward(&Tensor::full(y.shape(), 1.0));
        assert_eq!(gx.shape(), x.shape());
        assert!(gx.max_abs() > 0.0);
    }
}
