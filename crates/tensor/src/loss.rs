//! Regression criteria.
//!
//! The paper trains its estimator with **L1 loss** and reports that L2
//! "proved to be too aggressive in some cases, thus resulting in
//! sub-optimal model weights" (§V) — both are provided so the ablation
//! can reproduce that comparison.

use crate::tensor::Tensor;

/// A differentiable scalar criterion over (prediction, target) batches.
pub trait Loss {
    /// Returns `(loss, d loss / d prediction)`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    fn compute(&self, prediction: &Tensor, target: &Tensor) -> (f32, Tensor);

    /// Criterion name for reports.
    fn name(&self) -> &str;
}

/// Mean absolute error.
#[derive(Debug, Clone, Copy, Default)]
pub struct L1Loss;

impl Loss for L1Loss {
    fn compute(&self, prediction: &Tensor, target: &Tensor) -> (f32, Tensor) {
        assert_eq!(prediction.shape(), target.shape(), "loss shape mismatch");
        let n = prediction.len() as f32;
        let mut loss = 0.0f32;
        let grad: Vec<f32> = prediction
            .data()
            .iter()
            .zip(target.data())
            .map(|(&p, &t)| {
                let d = p - t;
                loss += d.abs();
                d.signum() / n
            })
            .collect();
        (loss / n, Tensor::from_vec(grad, prediction.shape()))
    }

    fn name(&self) -> &str {
        "l1"
    }
}

/// Mean squared error.
#[derive(Debug, Clone, Copy, Default)]
pub struct MseLoss;

impl Loss for MseLoss {
    fn compute(&self, prediction: &Tensor, target: &Tensor) -> (f32, Tensor) {
        assert_eq!(prediction.shape(), target.shape(), "loss shape mismatch");
        let n = prediction.len() as f32;
        let mut loss = 0.0f32;
        let grad: Vec<f32> = prediction
            .data()
            .iter()
            .zip(target.data())
            .map(|(&p, &t)| {
                let d = p - t;
                loss += d * d;
                2.0 * d / n
            })
            .collect();
        (loss / n, Tensor::from_vec(grad, prediction.shape()))
    }

    fn name(&self) -> &str {
        "l2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_matches_hand_computation() {
        let p = Tensor::from_vec(vec![1.0, -2.0], &[2]);
        let t = Tensor::from_vec(vec![0.0, 0.0], &[2]);
        let (l, g) = L1Loss.compute(&p, &t);
        assert_eq!(l, 1.5);
        assert_eq!(g.data(), &[0.5, -0.5]);
    }

    #[test]
    fn mse_matches_hand_computation() {
        let p = Tensor::from_vec(vec![1.0, -2.0], &[2]);
        let t = Tensor::from_vec(vec![0.0, 0.0], &[2]);
        let (l, g) = MseLoss.compute(&p, &t);
        assert_eq!(l, 2.5);
        assert_eq!(g.data(), &[1.0, -2.0]);
    }

    #[test]
    fn zero_error_means_zero_loss() {
        let p = Tensor::randn(&[4], 1);
        let (l1, _) = L1Loss.compute(&p, &p);
        let (l2, _) = MseLoss.compute(&p, &p);
        assert_eq!(l1, 0.0);
        assert_eq!(l2, 0.0);
    }

    #[test]
    #[should_panic(expected = "loss shape mismatch")]
    fn shape_mismatch_panics() {
        let _ = L1Loss.compute(&Tensor::zeros(&[2]), &Tensor::zeros(&[3]));
    }
}
