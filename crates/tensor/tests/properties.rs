//! Property-based tests over the tensor/NN substrate.

use omniboost_tensor::{
    Adam, Conv2d, Flatten, Gelu, GlobalAvgPool, L1Loss, Linear, Loss, MaxPool2d, Module, MseLoss,
    Optimizer, Sequential, Tensor,
};
use proptest::prelude::*;

fn arb_small_tensor(shape: &'static [usize]) -> impl Strategy<Value = Tensor> {
    let n: usize = shape.iter().product();
    proptest::collection::vec(-3.0f32..3.0, n).prop_map(move |data| Tensor::from_vec(data, shape))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Element-wise algebra: addition commutes, Hadamard distributes over
    /// scalar scaling.
    #[test]
    fn tensor_algebra(a in arb_small_tensor(&[3, 4]), b in arb_small_tensor(&[3, 4]), s in -2.0f32..2.0) {
        prop_assert_eq!(a.add(&b), b.add(&a));
        let left = a.hadamard(&b).scale(s);
        let right = a.scale(s).hadamard(&b);
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() <= 1e-4 * (1.0 + x.abs()));
        }
    }

    /// Convolution is a linear operator in its input when bias is zero:
    /// conv(αx) = α·conv(x).
    #[test]
    fn conv_is_linear_with_zero_bias(x in arb_small_tensor(&[1, 2, 5, 5]), alpha in -2.0f32..2.0) {
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, 7);
        for p in conv.params_mut().into_iter().skip(1) { // zero the bias
            p.value.fill_zero();
        }
        let y1 = conv.forward(&x.scale(alpha));
        let y2 = conv.forward(&x).scale(alpha);
        for (a, b) in y1.data().iter().zip(y2.data()) {
            prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    /// Max pooling never invents values: every output element is present
    /// in the input, and pooling is monotone under input scaling by a
    /// positive constant.
    #[test]
    fn maxpool_selects_existing_values(x in arb_small_tensor(&[1, 2, 4, 6])) {
        let mut pool = MaxPool2d::new(2);
        let y = pool.forward(&x);
        for v in y.data() {
            prop_assert!(x.data().contains(v));
        }
    }

    /// GELU is bounded below by a small constant and asymptotically
    /// linear: |gelu(x)| <= |x| + 0.2 everywhere.
    #[test]
    fn gelu_is_bounded(x in arb_small_tensor(&[1, 16])) {
        let mut g = Gelu::new();
        let y = g.forward(&x);
        for (xi, yi) in x.data().iter().zip(y.data()) {
            prop_assert!(yi.abs() <= xi.abs() + 0.2);
            prop_assert!(*yi >= -0.2);
        }
    }

    /// Losses are non-negative, zero exactly on perfect predictions, and
    /// symmetric in sign of the error for L1.
    #[test]
    fn loss_axioms(p in arb_small_tensor(&[2, 3]), t in arb_small_tensor(&[2, 3])) {
        let (l1, _) = L1Loss.compute(&p, &t);
        let (l2, _) = MseLoss.compute(&p, &t);
        prop_assert!(l1 >= 0.0 && l2 >= 0.0);
        let (self1, _) = L1Loss.compute(&p, &p);
        prop_assert_eq!(self1, 0.0);
        // Swapping prediction and target leaves both losses unchanged.
        let (l1s, _) = L1Loss.compute(&t, &p);
        prop_assert!((l1 - l1s).abs() < 1e-6);
    }

    /// One Adam step on any loss surface moves parameters by at most the
    /// learning rate per coordinate (the Adam step-size bound).
    #[test]
    fn adam_step_is_bounded(x in arb_small_tensor(&[4, 3]), t in arb_small_tensor(&[4, 2])) {
        let mut layer = Linear::new(3, 2, 3);
        let before: Vec<f32> = layer.params_mut().iter().flat_map(|p| p.value.data().to_vec()).collect();
        let y = layer.forward(&x);
        let (_, grad) = MseLoss.compute(&y, &t);
        layer.zero_grad();
        layer.backward(&grad);
        let lr = 0.05f32;
        Adam::new(lr).step(&mut layer.params_mut());
        let after: Vec<f32> = layer.params_mut().iter().flat_map(|p| p.value.data().to_vec()).collect();
        for (b, a) in before.iter().zip(&after) {
            // Adam's per-step displacement is bounded by ~lr/(1-beta1).
            prop_assert!((b - a).abs() <= lr * 11.0, "{b} -> {a}");
        }
    }

    /// The GEMM-structured batched backward agrees with the direct
    /// reference kernels on dW, dX and db within 1e-5, across batch
    /// sizes, kernels, strides and pads.
    #[test]
    fn conv_backward_gemm_equals_direct(
        n in 1usize..=3,
        cin in 1usize..=3,
        cout in 1usize..=4,
        k in 1usize..=3,
        s in 1usize..=2,
        p in 0usize..=1,
        h in 4usize..=6,
        w in 4usize..=7,
        seed in 0u64..1000,
    ) {
        let mut gemm_conv = Conv2d::new(cin, cout, k, s, p, seed);
        let mut direct_conv = Conv2d::new(cin, cout, k, s, p, seed);
        direct_conv.set_gemm_backward(false);
        let x = Tensor::randn(&[n, cin, h, w], seed.wrapping_add(1));
        let y = gemm_conv.forward(&x);
        let _ = direct_conv.forward(&x);
        let grad = Tensor::randn(y.shape(), seed.wrapping_add(2));
        gemm_conv.zero_grad();
        direct_conv.zero_grad();
        let gx = gemm_conv.backward(&grad);
        let gx_ref = direct_conv.backward(&grad);
        let ctx = format!("n={n} cin={cin} cout={cout} k={k} s={s} p={p} h={h} w={w}");
        for (a, b) in gx.data().iter().zip(gx_ref.data()) {
            prop_assert!((a - b).abs() < 1e-5 * (1.0 + b.abs()), "dX {a} vs {b} [{ctx}]");
        }
        for (pa, pb) in gemm_conv.params_mut().iter().zip(direct_conv.params_mut()) {
            for (a, b) in pa.grad.data().iter().zip(pb.grad.data()) {
                prop_assert!((a - b).abs() < 1e-5 * (1.0 + b.abs()), "dW/db {a} vs {b} [{ctx}]");
            }
        }
    }

    /// The batched GEMM forward reproduces per-sample direct forwards
    /// (the PR 1 contract, now carried by the shared packed kernel).
    #[test]
    fn conv_forward_batched_equals_per_sample(
        n in 2usize..=4,
        k in 1usize..=3,
        s in 1usize..=2,
        p in 0usize..=1,
        seed in 0u64..1000,
    ) {
        let mut conv = Conv2d::new(2, 3, k, s, p, seed);
        let h = 5usize;
        let w = 6usize;
        let x = Tensor::randn(&[n, 2, h, w], seed.wrapping_add(3));
        let yb = conv.forward(&x);
        let per = 2 * h * w;
        let oper = yb.len() / n;
        for i in 0..n {
            let xi = Tensor::from_vec(x.data()[i * per..(i + 1) * per].to_vec(), &[1, 2, h, w]);
            let yi = conv.forward(&xi);
            for (a, b) in yb.data()[i * oper..(i + 1) * oper].iter().zip(yi.data()) {
                prop_assert!((a - b).abs() <= 1e-6 * (1.0 + b.abs()), "{a} vs {b}");
            }
        }
    }

    /// Training a conv one SGD step with either backward keeps the two
    /// weight sets within 1e-5 — the gradients feed updates identically.
    #[test]
    fn conv_sgd_step_agrees_across_backwards(x in arb_small_tensor(&[3, 2, 5, 5])) {
        let build = || Conv2d::new(2, 3, 3, 1, 1, 31);
        let mut a = build();
        let mut b = build();
        b.set_gemm_backward(false);
        for conv in [&mut a, &mut b] {
            let y = conv.forward(&x);
            let (_, grad) = MseLoss.compute(&y, &Tensor::zeros(y.shape()));
            conv.zero_grad();
            conv.backward(&grad);
            Adam::new(0.01).step(&mut conv.params_mut());
        }
        for (pa, pb) in a.params_mut().iter().zip(b.params_mut()) {
            for (va, vb) in pa.value.data().iter().zip(pb.value.data()) {
                prop_assert!((va - vb).abs() < 1e-5, "{va} vs {vb}");
            }
        }
    }

    /// A full network forward pass is deterministic and batch-consistent:
    /// evaluating a 2-batch equals evaluating the two samples separately.
    #[test]
    fn forward_is_batch_consistent(a in arb_small_tensor(&[1, 2, 4, 4]), b in arb_small_tensor(&[1, 2, 4, 4])) {
        let build = || {
            Sequential::new()
                .push(Conv2d::new(2, 4, 3, 1, 1, 11))
                .push(Gelu::new())
                .push(GlobalAvgPool::new())
                .push(Flatten::new())
                .push(Linear::new(4, 2, 12))
        };
        let mut net = build();
        let mut data = a.data().to_vec();
        data.extend_from_slice(b.data());
        let batch = Tensor::from_vec(data, &[2, 2, 4, 4]);
        let yb = net.forward(&batch);
        let ya = net.forward(&a);
        let yb2 = net.forward(&b);
        for i in 0..2 {
            prop_assert!((yb.get(&[0, i]) - ya.get(&[0, i])).abs() < 1e-4);
            prop_assert!((yb.get(&[1, i]) - yb2.get(&[0, i])).abs() < 1e-4);
        }
    }

    /// Inference mode changes bookkeeping, never values: an eval-mode
    /// forward through a full pipeline equals the training-mode forward.
    #[test]
    fn inference_mode_preserves_values(x in arb_small_tensor(&[2, 2, 4, 4])) {
        let mut net = Sequential::new()
            .push(Conv2d::new(2, 4, 3, 1, 1, 17))
            .push(Gelu::new())
            .push(MaxPool2d::new(2))
            .push(GlobalAvgPool::new())
            .push(Flatten::new())
            .push(Linear::new(4, 2, 18));
        let y_train = net.forward(&x);
        net.set_training(false);
        let y_eval = net.forward(&x);
        prop_assert_eq!(y_train, y_eval);
        // And training mode keeps working after flipping back.
        net.set_training(true);
        let y2 = net.forward(&x);
        let g = net.backward(&Tensor::full(y2.shape(), 1.0));
        prop_assert!(g.max_abs() > 0.0);
    }
}
