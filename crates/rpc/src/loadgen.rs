//! A seeded closed-loop load generator: the same [`ArrivalTrace`]
//! generators that drive the in-process sims, replayed **over the
//! wire** against a live daemon.
//!
//! Closed-loop means one outstanding request: each trace event is sent
//! and its reply awaited before the next goes out, so the measured
//! per-request round-trip is pure admission latency (framing + parse +
//! engine tick), not queueing behind the generator itself. Stamps
//! travel in **virtual time** (the trace's `at_ms`) by default, which
//! is what makes the daemon-side run digest-identical to replaying the
//! same trace through `ServingSim` — the parity pin in
//! `tests/daemon.rs`.

use crate::api::{DepartRequest, SubmitRequest};
use crate::client::{RpcClient, RpcError};
use omniboost_models::{ArrivalTrace, JobEvent, SloClass};
use omniboost_serve::LatencyStats;
use std::time::Instant;

/// How a replay stamps its requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StampMode {
    /// Carry the trace's virtual `at_ms` stamps — deterministic,
    /// digest-reproducible runs.
    Virtual,
    /// Omit stamps; the daemon stamps its own wall clock — the
    /// realistic-latency mode the bench's sustained-throughput rows
    /// use.
    WallClock,
}

/// What a replay measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests issued (submits + departs).
    pub requests: usize,
    /// Submit requests among them.
    pub submits: usize,
    /// Depart requests among them.
    pub departs: usize,
    /// Submits answered `placed`.
    pub placed: usize,
    /// Submits answered `queued`.
    pub queued: usize,
    /// Submits refused with `admission-rejected`.
    pub rejected: usize,
    /// Wall time the replay took.
    pub elapsed_ms: f64,
    /// Sustained request rate (`requests / elapsed`).
    pub sustained_rps: f64,
    /// Per-request round-trip latency (admission latency for submits,
    /// wire + tick for departs), in milliseconds.
    pub rtt: LatencyStats,
}

/// Replays `trace` through `client`, one event per request, in trace
/// order. Admission rejections are part of the measured workload, not
/// errors; any other API or transport failure aborts the replay.
///
/// # Errors
///
/// The first non-rejection [`RpcError`].
pub fn replay_trace(
    client: &mut RpcClient,
    trace: &ArrivalTrace,
    mode: StampMode,
) -> Result<LoadgenReport, RpcError> {
    let mut report = LoadgenReport {
        requests: 0,
        submits: 0,
        departs: 0,
        placed: 0,
        queued: 0,
        rejected: 0,
        elapsed_ms: 0.0,
        sustained_rps: 0.0,
        rtt: LatencyStats::default(),
    };
    let mut samples = Vec::with_capacity(trace.len());
    let started = Instant::now();
    for event in trace.events() {
        let at_ms = match mode {
            StampMode::Virtual => Some(event.at_ms),
            StampMode::WallClock => None,
        };
        let sent = Instant::now();
        match event.event {
            JobEvent::Arrive(job) => {
                report.submits += 1;
                let request = SubmitRequest {
                    model: job.model,
                    tenant: job.tenant,
                    min_tps: match job.slo {
                        SloClass::Guaranteed { min_tps } => Some(min_tps),
                        SloClass::BestEffort => None,
                    },
                    id: Some(job.id),
                    at_ms,
                };
                match client.submit(&request) {
                    Ok(reply) if reply.outcome == "placed" => report.placed += 1,
                    Ok(_) => report.queued += 1,
                    Err(e) if e.is_code("admission-rejected") => report.rejected += 1,
                    Err(e) => return Err(e),
                }
            }
            JobEvent::Depart { job_id } => {
                report.departs += 1;
                client.depart(&DepartRequest { id: job_id, at_ms })?;
            }
        }
        samples.push(sent.elapsed().as_secs_f64() * 1e3);
        report.requests += 1;
    }
    report.elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    report.sustained_rps = if report.elapsed_ms > 0.0 {
        report.requests as f64 / (report.elapsed_ms / 1e3)
    } else {
        0.0
    };
    report.rtt = LatencyStats::from_samples(samples);
    Ok(report)
}
