//! # omniboost-rpc
//!
//! The network front door: a serving **daemon** over the shared
//! [`omniboost_serve::ServingEngine`], plus the client, wire types and
//! load generator that drive it.
//!
//! Everything below is hand-rolled on `std::net` — the build is fully
//! offline (no tokio, no hyper, no serde_json), so the crate carries
//! its own minimal HTTP/1.1 framing ([`http`]) and total JSON
//! reader/writer ([`json`]), both property-tested against hostile
//! input in `tests/properties.rs`.
//!
//! * [`api`] — the typed request/reply contract and stable error codes.
//! * [`servers`] — the worker-pool daemon: `submit`/`depart` tick the
//!   engine exactly as trace replay would, `status`/`summary`/`metrics`
//!   are non-disturbing snapshots, `drain` closes the admission gate
//!   (submits answer `503 draining` while residents finish), `shutdown`
//!   finishes the run, archives evaluation caches by board fingerprint
//!   and reports the run digest.
//! * [`client`] — a blocking keep-alive client with layered config
//!   (code defaults < environment) and typed errors.
//! * [`loadgen`] — seeded closed-loop trace replay over the wire; with
//!   virtual stamps the daemon-side digest equals the in-process
//!   [`omniboost_serve::ServingSim`] digest for the same trace.
//!
//! See `examples/rpc_daemon.rs` for a boot-drive-drain walkthrough and
//! `crates/bench/benches/rpc.rs` for the loadgen measurement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod http;
pub mod json;
pub mod loadgen;
pub mod servers;

pub use api::{
    ApiError, DepartReply, DepartRequest, DrainReply, ErrorCode, ShutdownReply, ShutdownRequest,
    StatusReply, SubmitReply, SubmitRequest,
};
pub use client::{ClientConfig, RpcClient, RpcError};
pub use http::{FrameDecoder, FrameError, FrameLimits, Request, Response};
pub use json::{Json, JsonError};
pub use loadgen::{replay_trace, LoadgenReport, StampMode};
pub use servers::{RpcServer, ServerConfig};
