//! The daemon: a blocking worker-pool HTTP/1.1 server over one shared
//! [`ServingEngine`].
//!
//! `workers` threads accept on a shared listener (`TcpListener` clones);
//! each connection is served to completion by one worker with keep-alive
//! and per-read socket timeouts, so a stalled or truncated peer is
//! bounded in time as well as memory ([`FrameLimits`]). All state lives
//! in one [`Shared`] block: the engine behind a mutex (serving decisions
//! are already rayon-parallel *inside* the engine, so cross-request
//! serialization is the determinism contract, not a bottleneck), plus
//! lock-free drain/stop flags the hot submit path checks first.
//!
//! ## Lifecycle
//!
//! * **Run** — `submit`/`depart` tick the engine exactly as trace replay
//!   would; stamps default to the daemon wall clock (ms since boot) and
//!   callers may override with virtual `at_ms` stamps for reproducible
//!   replays.
//! * **Drain** — `POST /v1/drain` flips the admission gate: new submits
//!   answer `503 {"code": "draining"}` while residents keep serving,
//!   departures still land, and freed capacity still drains the queue.
//! * **Shutdown** — `POST /v1/shutdown` drains, finishes the run
//!   ([`ServingEngine::finish`] archives evaluation caches per board
//!   fingerprint), replies with the run digest, and stops the pool —
//!   parked accept calls are woken by loopback connections.

use crate::api::{
    ApiError, DepartReply, DepartRequest, DrainReply, ErrorCode, ShutdownReply, ShutdownRequest,
    StatusReply, SubmitReply, SubmitRequest,
};
use crate::http::{render_response, FrameDecoder, FrameLimits, Request};
use crate::json;
use omniboost_estimator::CacheArchive;
use omniboost_hw::{Board, ThroughputModel};
use omniboost_serve::{
    LatencyStats, RejectReason, ServingConfig, ServingEngine, ServingReport, ServingSummary,
    SubmitOutcome,
};
use omniboost_telemetry::{export, LogHistogram, Telemetry};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Knobs of the network front door (the serving behaviour itself is
/// [`ServingConfig`], passed to [`RpcServer::start`] alongside).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address. Port 0 picks a free port ([`RpcServer::addr`]
    /// reports the bound one).
    pub addr: String,
    /// Accept/serve worker threads.
    pub workers: usize,
    /// Per-read socket timeout — the time bound on truncated requests.
    pub read_timeout_ms: u64,
    /// Request framing size caps.
    pub limits: FrameLimits,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            read_timeout_ms: 2_000,
            limits: FrameLimits::default(),
        }
    }
}

/// Everything the workers share.
struct Shared<M> {
    /// Bound address + pool size, for shutdown to wake parked accepts.
    addr: SocketAddr,
    workers: usize,
    engine: Mutex<ServingEngine<M>>,
    /// Admission gate: set → submits answer 503 `draining`.
    draining: AtomicBool,
    /// Pool stop flag: set → workers exit their accept loops.
    stopping: AtomicBool,
    /// Daemon-assigned job ids (kept above every caller-chosen id).
    next_id: AtomicU64,
    started: Instant,
    /// The daemon's recording telemetry: injected into the engine (and
    /// through it into every board runtime), scraped by `/metrics` and
    /// `GET /v1/trace`. Observational only — replay digests never see
    /// it.
    telemetry: Telemetry,
    /// The finished run, parked for [`RpcServer::join`].
    final_report: Mutex<Option<ServingReport>>,
    /// The shutdown reply, replayed verbatim to repeat shutdowns.
    final_reply: Mutex<Option<ShutdownReply>>,
}

impl<M> Shared<M> {
    fn wall_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    fn engine(&self) -> std::sync::MutexGuard<'_, ServingEngine<M>> {
        // A panicking handler must not wedge the daemon: recover the
        // engine and keep serving.
        self.engine.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A running daemon. Dropping the handle does **not** stop it — call
/// [`RpcServer::join`] (after a client-side shutdown) or
/// [`RpcServer::stop`].
pub struct RpcServer<M> {
    addr: SocketAddr,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared<M>>,
}

impl<M: ThroughputModel + Send + Sync + 'static> RpcServer<M> {
    /// Boots the daemon: builds the engine (loading any persisted cache
    /// archive — [`ServingConfig::cache_path`]), binds, and spawns the
    /// worker pool. The engine starts with a fresh run already open.
    ///
    /// # Errors
    ///
    /// Propagates bind/clone I/O errors.
    pub fn start(
        server: ServerConfig,
        boards: Vec<Board>,
        serving: ServingConfig,
        make_evaluator: impl FnMut(Board) -> M,
    ) -> std::io::Result<Self> {
        let mut engine = ServingEngine::new(boards, serving, make_evaluator);
        let telemetry = Telemetry::recording();
        engine.set_telemetry(telemetry.clone());
        engine.begin_run();
        let listener = TcpListener::bind(&server.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            addr,
            workers: server.workers.max(1),
            engine: Mutex::new(engine),
            draining: AtomicBool::new(false),
            stopping: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
            started: Instant::now(),
            telemetry,
            final_report: Mutex::new(None),
            final_reply: Mutex::new(None),
        });
        let read_timeout = Duration::from_millis(server.read_timeout_ms.max(1));
        let mut workers = Vec::with_capacity(server.workers.max(1));
        for _ in 0..server.workers.max(1) {
            let listener = listener.try_clone()?;
            let shared = Arc::clone(&shared);
            let limits = server.limits;
            workers.push(std::thread::spawn(move || {
                worker_loop(&shared, &listener, limits, read_timeout);
            }));
        }
        Ok(Self {
            addr,
            workers,
            shared,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the admission gate is closed.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Stops the worker pool **without** finishing the run (no cache
    /// archive, no report) — the abrupt-kill path. Prefer a client
    /// `POST /v1/shutdown` for a graceful exit.
    pub fn stop(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.stopping.store(true, Ordering::SeqCst);
        wake_workers(self.addr, self.workers.len());
    }

    /// Waits for the worker pool to exit and returns the finished run's
    /// report (`None` after [`RpcServer::stop`] — only a client
    /// shutdown finishes the run).
    pub fn join(self) -> Option<ServingReport> {
        for worker in self.workers {
            let _ = worker.join();
        }
        self.shared
            .final_report
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
    }
}

/// One worker: accept until the stop flag, serve each connection to
/// completion.
fn worker_loop<M: ThroughputModel + Send + Sync>(
    shared: &Arc<Shared<M>>,
    listener: &TcpListener,
    limits: FrameLimits,
    read_timeout: Duration,
) {
    loop {
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
                serve_conn(shared, stream, limits, read_timeout);
            }
            Err(_) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// Unblocks workers parked in `accept` by handing each a throwaway
/// connection.
fn wake_workers(addr: SocketAddr, workers: usize) {
    for _ in 0..workers {
        let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
    }
}

/// Serves one connection: decode → route → respond, keep-alive until
/// the peer closes, errors, times out, or asks to close. Framing errors
/// answer with their mapped status and close — the stream cannot
/// resynchronize.
fn serve_conn<M: ThroughputModel + Send + Sync>(
    shared: &Arc<Shared<M>>,
    mut stream: TcpStream,
    limits: FrameLimits,
    read_timeout: Duration,
) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_nodelay(true);
    let mut decoder = FrameDecoder::new(limits);
    let mut buf = [0u8; 8 * 1024];
    loop {
        loop {
            match decoder.next_request() {
                Ok(Some(request)) => {
                    let keep_alive = !request.wants_close();
                    let (status, body, content_type) = route(shared, &request);
                    let bytes = render_response(status, content_type, body.as_bytes(), keep_alive);
                    if stream.write_all(&bytes).is_err() {
                        return;
                    }
                    if !keep_alive || shared.stopping.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Ok(None) => break,
                Err(frame) => {
                    let body = format!(
                        "{{\"error\": {{\"code\": {}, \"message\": {}}}}}",
                        json::quote(frame.code()),
                        json::quote(&frame.to_string()),
                    );
                    let bytes =
                        render_response(frame.status(), "application/json", body.as_bytes(), false);
                    let _ = stream.write_all(&bytes);
                    return;
                }
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => decoder.feed(&buf[..n]),
            // Timeouts land here too: a truncated request is dropped
            // after `read_timeout` instead of parking the worker.
            Err(_) => return,
        }
    }
}

/// Routes one request to its handler, folding [`ApiError`]s into their
/// wire form.
fn route<M: ThroughputModel + Send + Sync>(
    shared: &Shared<M>,
    request: &Request,
) -> (u16, String, &'static str) {
    let path = request.target.split('?').next().unwrap_or("");
    // Per-endpoint request-phase span: covers parse + handler + body
    // render (socket I/O happens outside, in the connection loop).
    let _span = endpoint_span(shared, request.method.as_str(), path);
    let result = match (request.method.as_str(), path) {
        ("POST", "/v1/submit") => handle_submit(shared, &request.body),
        ("POST", "/v1/depart") => handle_depart(shared, &request.body),
        ("GET", "/v1/status") => Ok(status_reply(shared).to_json()),
        ("GET", "/v1/summary") => Ok(summary_json(&snapshot(shared))),
        ("GET", "/metrics") => {
            return (200, metrics_text(shared), "text/plain; charset=utf-8");
        }
        ("GET", "/v1/trace") => {
            return (200, shared.telemetry.trace_json(), "application/json");
        }
        ("POST", "/v1/drain") => Ok(handle_drain(shared).to_json()),
        ("POST", "/v1/shutdown") => handle_shutdown(shared, &request.body),
        (
            _,
            "/v1/submit" | "/v1/depart" | "/v1/status" | "/v1/summary" | "/metrics" | "/v1/trace"
            | "/v1/drain" | "/v1/shutdown",
        ) => Err(ApiError::new(
            ErrorCode::MethodNotAllowed,
            format!("{} does not accept {}", path, request.method),
        )),
        _ => Err(ApiError::new(
            ErrorCode::NotFound,
            format!("no route {path}"),
        )),
    };
    match result {
        Ok(body) => (200, body, "application/json"),
        Err(e) => (e.code.status(), e.to_json(), "application/json"),
    }
}

/// Opens the request-phase span for a known endpoint. Unroutable paths
/// get no span — one junk request must not mint one histogram series
/// each in the registry.
fn endpoint_span<M>(
    shared: &Shared<M>,
    method: &str,
    path: &str,
) -> Option<omniboost_telemetry::Span> {
    let name = match (method, path) {
        ("POST", "/v1/submit") => "rpc.submit",
        ("POST", "/v1/depart") => "rpc.depart",
        ("GET", "/v1/status") => "rpc.status",
        ("GET", "/v1/summary") => "rpc.summary",
        ("GET", "/metrics") => "rpc.metrics",
        ("GET", "/v1/trace") => "rpc.trace",
        ("POST", "/v1/drain") => "rpc.drain",
        ("POST", "/v1/shutdown") => "rpc.shutdown",
        _ => return None,
    };
    Some(shared.telemetry.span(name))
}

fn handle_submit<M: ThroughputModel + Send + Sync>(
    shared: &Shared<M>,
    body: &[u8],
) -> Result<String, ApiError> {
    // Gate before parsing: a draining daemon refuses even malformed
    // submits with the drain code, the signal clients key on.
    if shared.draining.load(Ordering::SeqCst) {
        return Err(ApiError::new(
            ErrorCode::Draining,
            "daemon is draining; new admissions are refused",
        ));
    }
    let request = SubmitRequest::from_json(body)?;
    let id = match request.id {
        Some(id) => {
            // Keep daemon-assigned ids clear of caller-chosen ones.
            shared.next_id.fetch_max(id + 1, Ordering::SeqCst);
            id
        }
        None => shared.next_id.fetch_add(1, Ordering::SeqCst),
    };
    let at_ms = request.at_ms.unwrap_or_else(|| shared.wall_ms());
    let mut engine = shared.engine();
    match engine.submit(request.job(id), at_ms) {
        SubmitOutcome::Placed(board) => Ok(SubmitReply {
            id,
            outcome: "placed".to_string(),
            board: Some(board),
            queue_depth: engine.queue_depth(),
        }
        .to_json()),
        SubmitOutcome::Queued => Ok(SubmitReply {
            id,
            outcome: "queued".to_string(),
            board: None,
            queue_depth: engine.queue_depth(),
        }
        .to_json()),
        SubmitOutcome::Rejected(reason) => Err(ApiError::new(
            ErrorCode::AdmissionRejected,
            match reason {
                RejectReason::Unservable => "unservable: no profile in the fleet admits this model",
                RejectReason::TenantQuota => "tenant quota: in-queue quota exhausted",
            },
        )),
    }
}

fn handle_depart<M: ThroughputModel + Send + Sync>(
    shared: &Shared<M>,
    body: &[u8],
) -> Result<String, ApiError> {
    let request = DepartRequest::from_json(body)?;
    let at_ms = request.at_ms.unwrap_or_else(|| shared.wall_ms());
    let known = shared.engine().depart(request.id, at_ms);
    Ok(DepartReply {
        id: request.id,
        known,
    }
    .to_json())
}

fn handle_drain<M: ThroughputModel + Send + Sync>(shared: &Shared<M>) -> DrainReply {
    let was_draining = shared.draining.swap(true, Ordering::SeqCst);
    let engine = shared.engine();
    let reply = DrainReply {
        draining: true,
        resident_jobs: engine.resident_jobs(),
        queue_depth: engine.queue_depth(),
    };
    drop(engine);
    // Only the open→closed transition is an incident; repeated drains
    // are idempotent no-ops and would spam the flight ring.
    if !was_draining {
        shared.telemetry.event(
            "rpc.drain",
            format!(
                "admission gate closed; resident={} queue_depth={}",
                reply.resident_jobs, reply.queue_depth
            ),
        );
    }
    reply
}

fn handle_shutdown<M: ThroughputModel + Send + Sync>(
    shared: &Shared<M>,
    body: &[u8],
) -> Result<String, ApiError> {
    let request = ShutdownRequest::from_json(body)?;
    shared.draining.store(true, Ordering::SeqCst);
    {
        // Replay the stored reply to repeat shutdowns instead of
        // finishing an already-finished run.
        let replay = shared
            .final_reply
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(reply) = replay.as_ref() {
            shared.stopping.store(true, Ordering::SeqCst);
            wake_workers(shared.addr, shared.workers);
            return Ok(reply.to_json());
        }
    }
    let mut engine = shared.engine();
    let horizon_ms = request
        .horizon_ms
        .unwrap_or_else(|| engine.now().max(shared.wall_ms()));
    shared.telemetry.event(
        "rpc.shutdown",
        format!("finishing run at horizon_ms={horizon_ms}"),
    );
    let report = engine.finish(horizon_ms);
    let cache_archived_segments = engine
        .config()
        .cache_path
        .as_ref()
        .and_then(|path| CacheArchive::load(path).ok())
        .map_or(0, |archive| archive.len());
    let reply = ShutdownReply {
        digest: report.digest(),
        events: report.summary.events,
        placements: report.summary.placements,
        left_in_queue: report.summary.left_in_queue,
        mean_aggregate_tps: report.summary.mean_aggregate_tps,
        cache_archived_segments,
    };
    *shared
        .final_report
        .lock()
        .unwrap_or_else(PoisonError::into_inner) = Some(report);
    *shared
        .final_reply
        .lock()
        .unwrap_or_else(PoisonError::into_inner) = Some(reply.clone());
    shared.stopping.store(true, Ordering::SeqCst);
    // Workers parked in accept() never observe the flag on their own.
    wake_workers(shared.addr, shared.workers);
    Ok(reply.to_json())
}

fn status_reply<M: ThroughputModel + Send + Sync>(shared: &Shared<M>) -> StatusReply {
    let engine = shared.engine();
    StatusReply {
        clock_ms: engine.now().max(shared.wall_ms()),
        boards: engine.num_boards(),
        resident_jobs: engine.resident_jobs(),
        queue_depth: engine.queue_depth(),
        draining: shared.draining.load(Ordering::SeqCst),
        arrivals: engine.arrivals(),
        placements: engine.placements(),
        cache_preloaded_entries: engine.cache_preloaded_entries(),
    }
}

fn snapshot<M: ThroughputModel + Send + Sync>(shared: &Shared<M>) -> ServingSummary {
    let engine = shared.engine();
    let at = engine.now().max(shared.wall_ms());
    engine.snapshot(at)
}

/// Renders a [`ServingSummary`] as the `/v1/summary` JSON body.
pub(crate) fn summary_json(s: &ServingSummary) -> String {
    let latency = |l: &LatencyStats| {
        format!(
            "{{\"count\": {}, \"median_ms\": {:?}, \"mean_ms\": {:?}, \"p99_ms\": {:?}, \
             \"max_ms\": {:?}}}",
            l.count, l.median_ms, l.mean_ms, l.p99_ms, l.max_ms
        )
    };
    let tenants: Vec<String> = s
        .tenants
        .iter()
        .map(|t| {
            format!(
                "{{\"tenant\": {}, \"arrivals\": {}, \"placements\": {}, \"mean_tps\": {:?}, \
                 \"queue_wait\": {}, \"left_in_queue\": {}}}",
                t.tenant,
                t.arrivals,
                t.placements,
                t.mean_tps,
                latency(&t.queue_wait),
                t.left_in_queue
            )
        })
        .collect();
    let utilization: Vec<String> = s
        .board_utilization
        .iter()
        .map(|u| format!("{u:?}"))
        .collect();
    format!(
        "{{\"events\": {}, \"arrivals\": {}, \"departures\": {}, \"placements\": {}, \
         \"peak_queue_depth\": {}, \"left_in_queue\": {}, \"rejected\": {}, \"expired\": {}, \
         \"pool\": {{\"submitted\": {}, \"requeued\": {}, \"placed\": {}, \"rejected\": {}, \
         \"expired\": {}, \"departed_queued\": {}, \"retries\": {}}}, \
         \"slo\": {{\"guaranteed_jobs\": {}, \"guaranteed_met\": {}, \
         \"guaranteed_attainment\": {:?}, \"best_effort_jobs\": {}, \"best_effort_served\": {}, \
         \"best_effort_mean_tps\": {:?}}}, \
         \"decisions\": {}, \"cold\": {}, \"warm\": {}, \"memo\": {}, \"single_job_delta\": {}, \
         \"migrated_layers\": {}, \"mean_aggregate_tps\": {:?}, \"board_utilization\": [{}], \
         \"eval_cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}}}, \
         \"cache_preloaded_entries\": {}, \"tenants\": [{}]}}",
        s.events,
        s.arrivals,
        s.departures,
        s.placements,
        s.peak_queue_depth,
        s.left_in_queue,
        s.rejected,
        s.expired,
        s.pool.submitted,
        s.pool.requeued,
        s.pool.placed,
        s.pool.rejected,
        s.pool.expired,
        s.pool.departed_queued,
        s.pool.retries,
        s.slo.guaranteed_jobs,
        s.slo.guaranteed_met,
        s.slo.guaranteed_attainment,
        s.slo.best_effort_jobs,
        s.slo.best_effort_served,
        s.slo.best_effort_mean_tps,
        s.decisions,
        latency(&s.cold),
        latency(&s.warm),
        latency(&s.memo),
        latency(&s.single_job_delta),
        s.migrated_layers,
        s.mean_aggregate_tps,
        utilization.join(", "),
        s.eval_cache.hits,
        s.eval_cache.misses,
        s.eval_cache.evictions,
        s.cache_preloaded_entries,
        tenants.join(", "),
    )
}

/// Renders the `/metrics` flat-text exposition: one `omniboost_<name>
/// <value>` line per counter, labelled lines for per-board and
/// per-tenant series. Everything comes off a [`ServingEngine::snapshot`]
/// — the scrape never disturbs the run.
fn metrics_text<M: ThroughputModel + Send + Sync>(shared: &Shared<M>) -> String {
    let engine = shared.engine();
    let clock_ms = engine.now().max(shared.wall_ms());
    let s = engine.snapshot(clock_ms);
    let queue_depth = engine.queue_depth();
    let resident = engine.resident_jobs();
    let aggregate_tps = engine.aggregate_throughput();
    let decision_hists: Vec<(&'static str, LogHistogram)> = engine
        .decision_histograms()
        .iter()
        .map(|(name, h)| (*name, (*h).clone()))
        .collect();
    drop(engine);
    let draining = u8::from(shared.draining.load(Ordering::SeqCst));
    let mut out = String::with_capacity(2048);
    let mut line = |name: &str, value: String| {
        out.push_str("omniboost_");
        out.push_str(name);
        out.push(' ');
        out.push_str(&value);
        out.push('\n');
    };
    line("clock_ms", clock_ms.to_string());
    line("draining", draining.to_string());
    line("boards", s.board_utilization.len().to_string());
    line("resident_jobs", resident.to_string());
    line("queue_depth", queue_depth.to_string());
    line("aggregate_tps", format!("{aggregate_tps:?}"));
    line("events", s.events.to_string());
    line("arrivals", s.arrivals.to_string());
    line("departures", s.departures.to_string());
    line("placements", s.placements.to_string());
    line("peak_queue_depth", s.peak_queue_depth.to_string());
    line("rejected", s.rejected.to_string());
    line("expired", s.expired.to_string());
    line("pool_submitted", s.pool.submitted.to_string());
    line("pool_requeued", s.pool.requeued.to_string());
    line("pool_placed", s.pool.placed.to_string());
    line("pool_rejected", s.pool.rejected.to_string());
    line("pool_expired", s.pool.expired.to_string());
    line("pool_departed_queued", s.pool.departed_queued.to_string());
    line("pool_retries", s.pool.retries.to_string());
    line("decisions", s.decisions.to_string());
    line("decision_cold_count", s.cold.count.to_string());
    line("decision_cold_p99_ms", format!("{:?}", s.cold.p99_ms));
    line("decision_warm_count", s.warm.count.to_string());
    line("decision_warm_p99_ms", format!("{:?}", s.warm.p99_ms));
    line("decision_memo_count", s.memo.count.to_string());
    line("decision_memo_p99_ms", format!("{:?}", s.memo.p99_ms));
    line("migrated_layers", s.migrated_layers.to_string());
    line("mean_aggregate_tps", format!("{:?}", s.mean_aggregate_tps));
    line("eval_cache_hits", s.eval_cache.hits.to_string());
    line("eval_cache_misses", s.eval_cache.misses.to_string());
    line("eval_cache_evictions", s.eval_cache.evictions.to_string());
    line(
        "cache_preloaded_entries",
        s.cache_preloaded_entries.to_string(),
    );
    line("slo_guaranteed_jobs", s.slo.guaranteed_jobs.to_string());
    line("slo_guaranteed_met", s.slo.guaranteed_met.to_string());
    line(
        "slo_guaranteed_attainment",
        format!("{:?}", s.slo.guaranteed_attainment),
    );
    line("slo_best_effort_jobs", s.slo.best_effort_jobs.to_string());
    line(
        "slo_best_effort_served",
        s.slo.best_effort_served.to_string(),
    );
    line(
        "slo_best_effort_mean_tps",
        format!("{:?}", s.slo.best_effort_mean_tps),
    );
    for (board, utilization) in s.board_utilization.iter().enumerate() {
        line(
            &format!("board_utilization{{board=\"{board}\"}}"),
            format!("{utilization:?}"),
        );
    }
    for tenant in &s.tenants {
        let t = tenant.tenant;
        line(
            &format!("tenant_arrivals{{tenant=\"{t}\"}}"),
            tenant.arrivals.to_string(),
        );
        line(
            &format!("tenant_placements{{tenant=\"{t}\"}}"),
            tenant.placements.to_string(),
        );
        line(
            &format!("tenant_mean_tps{{tenant=\"{t}\"}}"),
            format!("{:?}", tenant.mean_tps),
        );
        line(
            &format!("tenant_left_in_queue{{tenant=\"{t}\"}}"),
            tenant.left_in_queue.to_string(),
        );
    }
    // Histogram families (`# HELP`/`# TYPE` + cumulative `_bucket`,
    // `_sum`, `_count`). The flat lines above predate these and stay
    // byte-identical for existing scrapers; the families only append.
    for (name, h) in &decision_hists {
        export::render_histogram(
            &mut out,
            &format!("omniboost_{name}"),
            "Decision latency in milliseconds (log-bucketed, mergeable).",
            h,
        );
    }
    for (name, h) in shared.telemetry.histograms() {
        export::render_histogram(
            &mut out,
            &format!("omniboost_span_{}", export::sanitize_metric_name(name)),
            "Span duration in milliseconds (log-bucketed, mergeable).",
            &h,
        );
    }
    for (name, value) in shared.telemetry.counters() {
        export::render_counter(
            &mut out,
            &format!("omniboost_{}", export::sanitize_metric_name(name)),
            "Telemetry counter.",
            value,
        );
    }
    out
}
