//! The caller half: a blocking keep-alive client with layered
//! configuration and typed errors.
//!
//! One [`RpcClient`] owns one TCP connection, reused across calls
//! (HTTP/1.1 keep-alive). A connection lost *before* a request is
//! written is re-dialed and the request retried once; a connection lost
//! *after* the write surfaces as an error instead — the daemon may have
//! applied the submit, and silently retrying would double-apply it.

use crate::api::{
    DepartReply, DepartRequest, DrainReply, ShutdownReply, ShutdownRequest, StatusReply,
    SubmitReply, SubmitRequest,
};
use crate::http::{decode_response, FrameError, FrameLimits, Response};
use crate::json::{self, Json};
use std::fmt;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Where and how to reach a daemon. Layered: [`ClientConfig::new`]
/// gives code defaults, [`ClientConfig::from_env`] lets the environment
/// override them (`OMNIBOOST_RPC_ADDR`, `OMNIBOOST_RPC_CONNECT_TIMEOUT_MS`,
/// `OMNIBOOST_RPC_IO_TIMEOUT_MS`) — flags > env > defaults, the usual
/// order, with flags being whatever the caller mutates afterwards.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Daemon address (`host:port`).
    pub addr: String,
    /// Dial timeout.
    pub connect_timeout_ms: u64,
    /// Per-read/write socket timeout.
    pub io_timeout_ms: u64,
    /// Response framing caps (mirror of the server's).
    pub limits: FrameLimits,
}

impl ClientConfig {
    /// Code defaults against `addr`.
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            connect_timeout_ms: 2_000,
            io_timeout_ms: 10_000,
            limits: FrameLimits::default(),
        }
    }

    /// [`ClientConfig::new`] with environment overrides applied.
    pub fn from_env(default_addr: impl Into<String>) -> Self {
        let mut config = Self::new(default_addr);
        if let Ok(addr) = std::env::var("OMNIBOOST_RPC_ADDR") {
            if !addr.is_empty() {
                config.addr = addr;
            }
        }
        if let Some(ms) = env_ms("OMNIBOOST_RPC_CONNECT_TIMEOUT_MS") {
            config.connect_timeout_ms = ms;
        }
        if let Some(ms) = env_ms("OMNIBOOST_RPC_IO_TIMEOUT_MS") {
            config.io_timeout_ms = ms;
        }
        config
    }
}

fn env_ms(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.parse().ok()
}

/// Why a call failed.
#[derive(Debug)]
pub enum RpcError {
    /// Transport failure (dial, read, write, timeout).
    Io(std::io::Error),
    /// The daemon's bytes did not frame as an HTTP response.
    Frame(FrameError),
    /// The response framed but its body was not the expected shape.
    Protocol(String),
    /// The daemon answered with an error reply. `code` is the stable
    /// machine code (e.g. `"draining"` while the admission gate is
    /// closed — see [`crate::api::ErrorCode`]).
    Api {
        /// HTTP status.
        status: u16,
        /// Machine-readable code from the error body.
        code: String,
        /// Human-readable message from the error body.
        message: String,
    },
}

impl RpcError {
    /// Whether this is an API error carrying `code`.
    pub fn is_code(&self, code: &str) -> bool {
        matches!(self, RpcError::Api { code: c, .. } if c == code)
    }
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Io(e) => write!(f, "transport: {e}"),
            RpcError::Frame(e) => write!(f, "framing: {e}"),
            RpcError::Protocol(m) => write!(f, "protocol: {m}"),
            RpcError::Api {
                status,
                code,
                message,
            } => write!(f, "api {status} [{code}]: {message}"),
        }
    }
}

impl std::error::Error for RpcError {}

impl From<std::io::Error> for RpcError {
    fn from(e: std::io::Error) -> Self {
        RpcError::Io(e)
    }
}

impl From<FrameError> for RpcError {
    fn from(e: FrameError) -> Self {
        RpcError::Frame(e)
    }
}

impl From<crate::api::ApiError> for RpcError {
    fn from(e: crate::api::ApiError) -> Self {
        RpcError::Protocol(e.to_string())
    }
}

/// A blocking daemon client over one keep-alive connection.
pub struct RpcClient {
    config: ClientConfig,
    conn: Option<TcpStream>,
}

impl RpcClient {
    /// Dials the daemon eagerly so configuration errors surface here,
    /// not on the first call.
    ///
    /// # Errors
    ///
    /// [`RpcError::Io`] when the daemon is unreachable.
    pub fn connect(config: ClientConfig) -> Result<Self, RpcError> {
        let mut client = Self { config, conn: None };
        client.redial()?;
        Ok(client)
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    fn redial(&mut self) -> Result<(), RpcError> {
        let addr: SocketAddr =
            self.config.addr.to_socket_addrs()?.next().ok_or_else(|| {
                RpcError::Protocol(format!("unresolvable addr {}", self.config.addr))
            })?;
        let stream = TcpStream::connect_timeout(
            &addr,
            Duration::from_millis(self.config.connect_timeout_ms),
        )?;
        let io = Duration::from_millis(self.config.io_timeout_ms.max(1));
        stream.set_read_timeout(Some(io))?;
        stream.set_write_timeout(Some(io))?;
        stream.set_nodelay(true)?;
        self.conn = Some(stream);
        Ok(())
    }

    /// One request/response exchange. Re-dials and retries once if the
    /// *write* fails (connection aged out between calls); never retries
    /// after the request reached the wire.
    fn exchange(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Response, RpcError> {
        let request = {
            let body = body.unwrap_or("");
            format!(
                "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\n\r\n{body}",
                self.config.addr,
                body.len(),
            )
        };
        if self.conn.is_none() {
            self.redial()?;
        }
        let wrote = self
            .conn
            .as_mut()
            .expect("dialed above")
            .write_all(request.as_bytes());
        if wrote.is_err() {
            self.conn = None;
            self.redial()?;
            self.conn
                .as_mut()
                .expect("dialed above")
                .write_all(request.as_bytes())?;
        }
        let stream = self.conn.as_mut().expect("dialed above");
        let mut buf = Vec::with_capacity(4096);
        let mut chunk = [0u8; 4096];
        loop {
            if let Some((response, consumed)) = decode_response(&buf, self.config.limits)? {
                debug_assert_eq!(consumed, buf.len(), "client never pipelines");
                return Ok(response);
            }
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                self.conn = None;
                return Err(RpcError::Protocol(
                    "connection closed mid-response".to_string(),
                ));
            }
            buf.extend_from_slice(&chunk[..n]);
        }
    }

    /// Exchange + error-body decoding: non-2xx replies become
    /// [`RpcError::Api`].
    fn call(&mut self, method: &str, path: &str, body: Option<&str>) -> Result<Vec<u8>, RpcError> {
        let response = self.exchange(method, path, body)?;
        if (200..300).contains(&response.status) {
            return Ok(response.body);
        }
        let (code, message) = match json::parse(&response.body) {
            Ok(value) => {
                let error = value.get("error").cloned().unwrap_or(Json::Null);
                (
                    error
                        .get("code")
                        .and_then(Json::as_str)
                        .unwrap_or("unknown")
                        .to_string(),
                    error
                        .get("message")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                )
            }
            Err(_) => (
                "unknown".to_string(),
                String::from_utf8_lossy(&response.body).into_owned(),
            ),
        };
        Err(RpcError::Api {
            status: response.status,
            code,
            message,
        })
    }

    /// `POST /v1/submit`.
    ///
    /// # Errors
    ///
    /// [`RpcError::Api`] with code `admission-rejected` on mempool
    /// refusal, `draining` while the gate is closed; transport and
    /// protocol errors otherwise.
    pub fn submit(&mut self, request: &SubmitRequest) -> Result<SubmitReply, RpcError> {
        let body = self.call("POST", "/v1/submit", Some(&request.to_json()))?;
        Ok(SubmitReply::from_json(&body)?)
    }

    /// `POST /v1/depart`.
    ///
    /// # Errors
    ///
    /// Transport, framing and API errors.
    pub fn depart(&mut self, request: &DepartRequest) -> Result<DepartReply, RpcError> {
        let body = self.call("POST", "/v1/depart", Some(&request.to_json()))?;
        Ok(DepartReply::from_json(&body)?)
    }

    /// `GET /v1/status`.
    ///
    /// # Errors
    ///
    /// Transport, framing and API errors.
    pub fn status(&mut self) -> Result<StatusReply, RpcError> {
        let body = self.call("GET", "/v1/status", None)?;
        Ok(StatusReply::from_json(&body)?)
    }

    /// `GET /v1/summary` — the mid-run [`ServingSummary`] snapshot as
    /// parsed JSON.
    ///
    /// [`ServingSummary`]: omniboost_serve::ServingSummary
    ///
    /// # Errors
    ///
    /// Transport, framing and API errors.
    pub fn summary(&mut self) -> Result<Json, RpcError> {
        let body = self.call("GET", "/v1/summary", None)?;
        json::parse(&body).map_err(|e| RpcError::Protocol(e.to_string()))
    }

    /// `GET /metrics` — the flat-text exposition.
    ///
    /// # Errors
    ///
    /// Transport, framing and API errors.
    pub fn metrics(&mut self) -> Result<String, RpcError> {
        let body = self.call("GET", "/metrics", None)?;
        String::from_utf8(body).map_err(|_| RpcError::Protocol("metrics not UTF-8".to_string()))
    }

    /// `GET /v1/trace` — the daemon's retained spans + flight-recorder
    /// events as Chrome `trace_event` JSON (loadable in
    /// `about://tracing` or Perfetto), returned verbatim.
    ///
    /// # Errors
    ///
    /// Transport, framing and API errors.
    pub fn trace(&mut self) -> Result<String, RpcError> {
        let body = self.call("GET", "/v1/trace", None)?;
        String::from_utf8(body).map_err(|_| RpcError::Protocol("trace not UTF-8".to_string()))
    }

    /// `POST /v1/drain` — close the admission gate.
    ///
    /// # Errors
    ///
    /// Transport, framing and API errors.
    pub fn drain(&mut self) -> Result<DrainReply, RpcError> {
        let body = self.call("POST", "/v1/drain", Some("{}"))?;
        Ok(DrainReply::from_json(&body)?)
    }

    /// `POST /v1/shutdown` — finish the run (archiving caches) and stop
    /// the daemon.
    ///
    /// # Errors
    ///
    /// Transport, framing and API errors.
    pub fn shutdown(&mut self, request: &ShutdownRequest) -> Result<ShutdownReply, RpcError> {
        let body = self.call("POST", "/v1/shutdown", Some(&request.to_json()))?;
        Ok(ShutdownReply::from_json(&body)?)
    }
}
