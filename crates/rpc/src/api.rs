//! The RPC API surface: request/response types and their wire
//! encoding.
//!
//! Follows the kakarot-rpc shape — `api` holds the typed
//! request/response contract, `servers` the connection/worker loop,
//! `client` the caller side with layered config and typed errors. The
//! types derive `Serialize`/`Deserialize` against the workspace serde
//! shim for API parity with the real crate; the actual wire bytes are
//! produced/consumed by the hand-rolled [`crate::json`] module (the
//! shim's derives are no-ops).
//!
//! | method | path | body | reply |
//! |---|---|---|---|
//! | POST | `/v1/submit` | [`SubmitRequest`] | [`SubmitReply`] |
//! | POST | `/v1/depart` | [`DepartRequest`] | [`DepartReply`] |
//! | GET | `/v1/status` | — | [`StatusReply`] |
//! | GET | `/v1/summary` | — | mid-run summary snapshot (JSON) |
//! | GET | `/metrics` | — | Prometheus text: flat counters + histogram families |
//! | GET | `/v1/trace` | — | Chrome `trace_event` JSON (spans + flight events) |
//! | POST | `/v1/drain` | — | [`DrainReply`] |
//! | POST | `/v1/shutdown` | [`ShutdownRequest`] | [`ShutdownReply`] |

use crate::json::{self, Json};
use omniboost_models::{JobSpec, ModelId, SloClass};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable machine-readable error codes carried by every non-2xx reply
/// body (`{"error": {"code": ..., "message": ...}}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ErrorCode {
    /// The body is not valid JSON.
    MalformedJson,
    /// The body parsed but misses/mistypes a required field.
    BadRequest,
    /// `model` names no model in the zoo.
    UnknownModel,
    /// The daemon is draining: new admissions are refused, residents
    /// keep running. The **distinct drain code** clients key on.
    Draining,
    /// The admission mempool rejected the job (validation/quota); the
    /// message carries the reason.
    AdmissionRejected,
    /// No such route.
    NotFound,
    /// Route exists, method does not.
    MethodNotAllowed,
    /// The framing layer refused the request (size caps, malformed
    /// head).
    BadFrame,
    /// Anything unexpected server-side.
    Internal,
}

impl ErrorCode {
    /// The wire spelling (kebab-case).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::MalformedJson => "malformed-json",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownModel => "unknown-model",
            ErrorCode::Draining => "draining",
            ErrorCode::AdmissionRejected => "admission-rejected",
            ErrorCode::NotFound => "not-found",
            ErrorCode::MethodNotAllowed => "method-not-allowed",
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::Internal => "internal",
        }
    }

    /// The HTTP status the code travels under.
    pub fn status(self) -> u16 {
        match self {
            ErrorCode::MalformedJson | ErrorCode::BadRequest | ErrorCode::BadFrame => 400,
            ErrorCode::UnknownModel => 422,
            ErrorCode::Draining => 503,
            ErrorCode::AdmissionRejected => 409,
            ErrorCode::NotFound => 404,
            ErrorCode::MethodNotAllowed => 405,
            ErrorCode::Internal => 500,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed API error (the decoded form of an error reply body).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ApiError {
    /// Machine-readable code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ApiError {
    /// Constructs an error.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }

    /// The reply body for this error.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"error\": {{\"code\": {}, \"message\": {}}}}}",
            json::quote(self.code.as_str()),
            json::quote(&self.message),
        )
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ApiError {}

/// `POST /v1/submit` — submit one job for serving.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmitRequest {
    /// Model to serve (zoo name, e.g. `"resnet50"`).
    pub model: ModelId,
    /// Submitting tenant (default 0).
    pub tenant: u32,
    /// Guaranteed-class throughput floor in inferences/s; absent =
    /// best-effort.
    pub min_tps: Option<f64>,
    /// Caller-chosen job id. Absent = the daemon assigns the next id —
    /// trace replays pass their own ids so departures can reference
    /// them.
    pub id: Option<u64>,
    /// Virtual timestamp in ms. Absent = the daemon stamps its wall
    /// clock (ms since boot). Replays pass trace stamps, which is what
    /// makes the wire path digest-identical to in-process replay.
    pub at_ms: Option<u64>,
}

impl SubmitRequest {
    /// A best-effort submit of `model` under tenant 0, daemon-stamped.
    pub fn simple(model: ModelId) -> Self {
        Self {
            model,
            tenant: 0,
            min_tps: None,
            id: None,
            at_ms: None,
        }
    }

    /// The wire body.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            format!("\"model\": {}", json::quote(&self.model.to_string())),
            format!("\"tenant\": {}", self.tenant),
        ];
        if let Some(floor) = self.min_tps {
            fields.push(format!("\"min_tps\": {floor:?}"));
        }
        if let Some(id) = self.id {
            fields.push(format!("\"id\": {id}"));
        }
        if let Some(at) = self.at_ms {
            fields.push(format!("\"at_ms\": {at}"));
        }
        format!("{{{}}}", fields.join(", "))
    }

    /// Decodes a request body.
    ///
    /// # Errors
    ///
    /// [`ApiError`] with [`ErrorCode::MalformedJson`],
    /// [`ErrorCode::BadRequest`] or [`ErrorCode::UnknownModel`].
    pub fn from_json(body: &[u8]) -> Result<Self, ApiError> {
        let value = parse_body(body)?;
        let model_name = value
            .get("model")
            .and_then(Json::as_str)
            .ok_or_else(|| ApiError::new(ErrorCode::BadRequest, "missing string field `model`"))?;
        let model: ModelId = model_name.parse().map_err(|_| {
            ApiError::new(
                ErrorCode::UnknownModel,
                format!("unknown model `{model_name}`"),
            )
        })?;
        let tenant = match value.get("tenant") {
            None => 0,
            Some(v) => v
                .as_u64()
                .filter(|t| *t <= u64::from(u32::MAX))
                .ok_or_else(|| ApiError::new(ErrorCode::BadRequest, "`tenant` must be a u32"))?
                as u32,
        };
        let min_tps = match value.get("min_tps") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_f64().filter(|f| *f >= 0.0).ok_or_else(|| {
                ApiError::new(
                    ErrorCode::BadRequest,
                    "`min_tps` must be a non-negative number",
                )
            })?),
        };
        let id = opt_u64(&value, "id")?;
        let at_ms = opt_u64(&value, "at_ms")?;
        Ok(Self {
            model,
            tenant,
            min_tps,
            id,
            at_ms,
        })
    }

    /// The [`JobSpec`] this request describes, under the assigned `id`.
    pub fn job(&self, id: u64) -> JobSpec {
        JobSpec {
            id,
            model: self.model,
            tenant: self.tenant,
            slo: match self.min_tps {
                Some(min_tps) => SloClass::Guaranteed { min_tps },
                None => SloClass::BestEffort,
            },
        }
    }
}

/// `POST /v1/depart` — a served job leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepartRequest {
    /// The job id from its submit.
    pub id: u64,
    /// Virtual timestamp, like [`SubmitRequest::at_ms`].
    pub at_ms: Option<u64>,
}

impl DepartRequest {
    /// The wire body.
    pub fn to_json(&self) -> String {
        match self.at_ms {
            Some(at) => format!("{{\"id\": {}, \"at_ms\": {at}}}", self.id),
            None => format!("{{\"id\": {}}}", self.id),
        }
    }

    /// Decodes a request body.
    ///
    /// # Errors
    ///
    /// [`ApiError`] on malformed JSON or a missing/mistyped `id`.
    pub fn from_json(body: &[u8]) -> Result<Self, ApiError> {
        let value = parse_body(body)?;
        let id = value
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| ApiError::new(ErrorCode::BadRequest, "missing u64 field `id`"))?;
        Ok(Self {
            id,
            at_ms: opt_u64(&value, "at_ms")?,
        })
    }
}

/// What happened to a submitted job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmitReply {
    /// The job's id (caller-chosen or daemon-assigned).
    pub id: u64,
    /// `"placed"` | `"queued"` (rejections travel as [`ApiError`] with
    /// [`ErrorCode::AdmissionRejected`]).
    pub outcome: String,
    /// The board the job landed on (placed only).
    pub board: Option<usize>,
    /// Waiting entries after this submit.
    pub queue_depth: usize,
}

impl SubmitReply {
    /// The wire body.
    pub fn to_json(&self) -> String {
        let board = match self.board {
            Some(b) => b.to_string(),
            None => "null".into(),
        };
        format!(
            "{{\"id\": {}, \"outcome\": {}, \"board\": {board}, \"queue_depth\": {}}}",
            self.id,
            json::quote(&self.outcome),
            self.queue_depth,
        )
    }

    /// Decodes a reply body.
    ///
    /// # Errors
    ///
    /// [`ApiError`] on malformed or incomplete replies.
    pub fn from_json(body: &[u8]) -> Result<Self, ApiError> {
        let value = parse_body(body)?;
        Ok(Self {
            id: require_u64(&value, "id")?,
            outcome: value
                .get("outcome")
                .and_then(Json::as_str)
                .ok_or_else(|| ApiError::new(ErrorCode::BadRequest, "missing `outcome`"))?
                .to_string(),
            board: value
                .get("board")
                .and_then(Json::as_u64)
                .map(|b| b as usize),
            queue_depth: require_u64(&value, "queue_depth")? as usize,
        })
    }
}

/// Whether a departed id was known.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepartReply {
    /// The departed job id.
    pub id: u64,
    /// Whether the job was resident or queued when the depart arrived.
    pub known: bool,
}

impl DepartReply {
    /// The wire body.
    pub fn to_json(&self) -> String {
        format!("{{\"id\": {}, \"known\": {}}}", self.id, self.known)
    }

    /// Decodes a reply body.
    ///
    /// # Errors
    ///
    /// [`ApiError`] on malformed or incomplete replies.
    pub fn from_json(body: &[u8]) -> Result<Self, ApiError> {
        let value = parse_body(body)?;
        Ok(Self {
            id: require_u64(&value, "id")?,
            known: value
                .get("known")
                .and_then(Json::as_bool)
                .ok_or_else(|| ApiError::new(ErrorCode::BadRequest, "missing `known`"))?,
        })
    }
}

/// `GET /v1/status` — cheap daemon liveness/state probe.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatusReply {
    /// Daemon clock in ms (wall ms since boot, or the newest virtual
    /// stamp if that is ahead).
    pub clock_ms: u64,
    /// Boards in the fleet.
    pub boards: usize,
    /// Jobs resident across the fleet.
    pub resident_jobs: usize,
    /// Waiting entries in the admission pool.
    pub queue_depth: usize,
    /// Whether the daemon refuses new admissions.
    pub draining: bool,
    /// Arrivals accepted this run.
    pub arrivals: usize,
    /// Placements this run.
    pub placements: usize,
    /// Evaluation-cache entries warm-loaded from the archive at boot —
    /// a rebooted daemon reports its warm preloads here.
    pub cache_preloaded_entries: usize,
}

impl StatusReply {
    /// The wire body.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"clock_ms\": {}, \"boards\": {}, \"resident_jobs\": {}, \
             \"queue_depth\": {}, \"draining\": {}, \"arrivals\": {}, \
             \"placements\": {}, \"cache_preloaded_entries\": {}}}",
            self.clock_ms,
            self.boards,
            self.resident_jobs,
            self.queue_depth,
            self.draining,
            self.arrivals,
            self.placements,
            self.cache_preloaded_entries,
        )
    }

    /// Decodes a reply body.
    ///
    /// # Errors
    ///
    /// [`ApiError`] on malformed or incomplete replies.
    pub fn from_json(body: &[u8]) -> Result<Self, ApiError> {
        let value = parse_body(body)?;
        Ok(Self {
            clock_ms: require_u64(&value, "clock_ms")?,
            boards: require_u64(&value, "boards")? as usize,
            resident_jobs: require_u64(&value, "resident_jobs")? as usize,
            queue_depth: require_u64(&value, "queue_depth")? as usize,
            draining: value
                .get("draining")
                .and_then(Json::as_bool)
                .ok_or_else(|| ApiError::new(ErrorCode::BadRequest, "missing `draining`"))?,
            arrivals: require_u64(&value, "arrivals")? as usize,
            placements: require_u64(&value, "placements")? as usize,
            cache_preloaded_entries: require_u64(&value, "cache_preloaded_entries")? as usize,
        })
    }
}

/// `POST /v1/drain` — the daemon entered drain mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DrainReply {
    /// Always true after the call (idempotent).
    pub draining: bool,
    /// Jobs still resident (they keep running to completion).
    pub resident_jobs: usize,
    /// Entries still waiting (they may still drain onto boards as
    /// residents depart).
    pub queue_depth: usize,
}

impl DrainReply {
    /// The wire body.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"draining\": {}, \"resident_jobs\": {}, \"queue_depth\": {}}}",
            self.draining, self.resident_jobs, self.queue_depth
        )
    }

    /// Decodes a reply body.
    ///
    /// # Errors
    ///
    /// [`ApiError`] on malformed or incomplete replies.
    pub fn from_json(body: &[u8]) -> Result<Self, ApiError> {
        let value = parse_body(body)?;
        Ok(Self {
            draining: value
                .get("draining")
                .and_then(Json::as_bool)
                .ok_or_else(|| ApiError::new(ErrorCode::BadRequest, "missing `draining`"))?,
            resident_jobs: require_u64(&value, "resident_jobs")? as usize,
            queue_depth: require_u64(&value, "queue_depth")? as usize,
        })
    }
}

/// `POST /v1/shutdown` — finish the run and stop the daemon.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShutdownRequest {
    /// Horizon the run's time integrals extend to (ms). Absent = the
    /// daemon's clock at shutdown.
    pub horizon_ms: Option<u64>,
}

impl ShutdownRequest {
    /// The wire body.
    pub fn to_json(&self) -> String {
        match self.horizon_ms {
            Some(h) => format!("{{\"horizon_ms\": {h}}}"),
            None => "{}".into(),
        }
    }

    /// Decodes a request body (an empty body is a default shutdown).
    ///
    /// # Errors
    ///
    /// [`ApiError`] on malformed JSON or a mistyped `horizon_ms`.
    pub fn from_json(body: &[u8]) -> Result<Self, ApiError> {
        if body.iter().all(|b| b.is_ascii_whitespace()) {
            return Ok(Self::default());
        }
        let value = parse_body(body)?;
        Ok(Self {
            horizon_ms: opt_u64(&value, "horizon_ms")?,
        })
    }
}

/// The daemon's parting words: the finished run, digested.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShutdownReply {
    /// [`omniboost_serve::ServingReport::digest`] of the finished run —
    /// the latency-free determinism fingerprint the parity test pins
    /// against in-process replay.
    pub digest: u64,
    /// Events processed (arrivals + departures).
    pub events: usize,
    /// Placements over the run.
    pub placements: usize,
    /// Jobs left waiting at shutdown.
    pub left_in_queue: usize,
    /// Time-weighted mean fleet throughput over the horizon.
    pub mean_aggregate_tps: f64,
    /// Per-profile `CacheArchive` segments on disk after the shutdown
    /// archive pass (0 when no cache path is configured).
    pub cache_archived_segments: usize,
}

impl ShutdownReply {
    /// The wire body. The digest travels as a hex string: JSON numbers
    /// are f64 and would silently round u64 digests.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"digest\": {}, \"events\": {}, \"placements\": {}, \
             \"left_in_queue\": {}, \"mean_aggregate_tps\": {:?}, \
             \"cache_archived_segments\": {}}}",
            json::quote(&format!("{:#018x}", self.digest)),
            self.events,
            self.placements,
            self.left_in_queue,
            self.mean_aggregate_tps,
            self.cache_archived_segments,
        )
    }

    /// Decodes a reply body.
    ///
    /// # Errors
    ///
    /// [`ApiError`] on malformed or incomplete replies.
    pub fn from_json(body: &[u8]) -> Result<Self, ApiError> {
        let value = parse_body(body)?;
        let digest_hex = value
            .get("digest")
            .and_then(Json::as_str)
            .ok_or_else(|| ApiError::new(ErrorCode::BadRequest, "missing `digest`"))?;
        let digest = u64::from_str_radix(digest_hex.trim_start_matches("0x"), 16)
            .map_err(|_| ApiError::new(ErrorCode::BadRequest, "malformed `digest`"))?;
        Ok(Self {
            digest,
            events: require_u64(&value, "events")? as usize,
            placements: require_u64(&value, "placements")? as usize,
            left_in_queue: require_u64(&value, "left_in_queue")? as usize,
            mean_aggregate_tps: value
                .get("mean_aggregate_tps")
                .and_then(Json::as_f64)
                .ok_or_else(|| {
                    ApiError::new(ErrorCode::BadRequest, "missing `mean_aggregate_tps`")
                })?,
            cache_archived_segments: require_u64(&value, "cache_archived_segments")? as usize,
        })
    }
}

fn parse_body(body: &[u8]) -> Result<Json, ApiError> {
    json::parse(body).map_err(|e| ApiError::new(ErrorCode::MalformedJson, e.to_string()))
}

fn opt_u64(value: &Json, key: &str) -> Result<Option<u64>, ApiError> {
    match value.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| ApiError::new(ErrorCode::BadRequest, format!("`{key}` must be a u64"))),
    }
}

fn require_u64(value: &Json, key: &str) -> Result<u64, ApiError> {
    value
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ApiError::new(ErrorCode::BadRequest, format!("missing u64 field `{key}`")))
}
