//! A minimal, allocation-conscious JSON reader/writer for the RPC API.
//!
//! The workspace's `serde` is an offline no-op shim (see
//! `crates/shims/serde`), so the wire format is hand-rolled here: a
//! strict recursive-descent parser over the subset the API speaks
//! (objects, arrays, strings with `\uXXXX` escapes, finite numbers,
//! booleans, null) and a writer with correct string escaping. The
//! parser is **total**: any byte sequence produces either a [`Json`]
//! value or a typed [`JsonError`] — never a panic — and recursion is
//! depth-bounded so adversarial nesting cannot blow the worker's stack
//! (property-tested in `tests/properties.rs`).

use std::fmt;

/// Maximum nesting depth the parser accepts. The API uses ≤ 3 levels;
/// 32 leaves headroom without letting `[[[[…]]]]` recurse unboundedly.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always finite — the grammar cannot spell
    /// infinities or NaN).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the last value
    /// on lookup-by-iteration order below).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object by key (`None` for non-objects and missing
    /// keys). Duplicate keys resolve to the **last** occurrence, like
    /// serde_json.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a finite f64, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a u64, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Why a body failed to parse. Every variant maps to a 400-class API
/// error — the server never panics on hostile bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JsonError {
    /// Input ended mid-value.
    Truncated,
    /// An unexpected byte at this offset.
    Unexpected(usize),
    /// Nesting beyond [`MAX_DEPTH`].
    TooDeep,
    /// A number token that does not parse as a finite f64.
    BadNumber(usize),
    /// A malformed `\` escape or control byte inside a string.
    BadString(usize),
    /// Valid value followed by trailing non-whitespace.
    Trailing(usize),
    /// The body is not UTF-8.
    NotUtf8,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Truncated => write!(f, "body truncated mid-value"),
            JsonError::Unexpected(at) => write!(f, "unexpected byte at offset {at}"),
            JsonError::TooDeep => write!(f, "nesting deeper than {MAX_DEPTH}"),
            JsonError::BadNumber(at) => write!(f, "malformed number at offset {at}"),
            JsonError::BadString(at) => write!(f, "malformed string at offset {at}"),
            JsonError::Trailing(at) => write!(f, "trailing bytes at offset {at}"),
            JsonError::NotUtf8 => write!(f, "body is not valid UTF-8"),
        }
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON value from `bytes` (the whole body must be the
/// value, modulo surrounding whitespace).
///
/// # Errors
///
/// Returns a [`JsonError`] on any malformed, truncated or
/// over-nested input.
pub fn parse(bytes: &[u8]) -> Result<Json, JsonError> {
    let text = std::str::from_utf8(bytes).map_err(|_| JsonError::NotUtf8)?;
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::Trailing(p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &[u8]) -> bool {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::TooDeep);
        }
        match self.peek() {
            None => Err(JsonError::Truncated),
            Some(b'n') => {
                if self.eat(b"null") {
                    Ok(Json::Null)
                } else {
                    Err(JsonError::Unexpected(self.pos))
                }
            }
            Some(b't') => {
                if self.eat(b"true") {
                    Ok(Json::Bool(true))
                } else {
                    Err(JsonError::Unexpected(self.pos))
                }
            }
            Some(b'f') => {
                if self.eat(b"false") {
                    Ok(Json::Bool(false))
                } else {
                    Err(JsonError::Unexpected(self.pos))
                }
            }
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        Some(_) => return Err(JsonError::Unexpected(self.pos)),
                        None => return Err(JsonError::Truncated),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.skip_ws();
                    if self.peek() != Some(b'"') {
                        return Err(match self.peek() {
                            None => JsonError::Truncated,
                            Some(_) => JsonError::Unexpected(self.pos),
                        });
                    }
                    let key = self.string()?;
                    self.skip_ws();
                    if self.peek() != Some(b':') {
                        return Err(match self.peek() {
                            None => JsonError::Truncated,
                            Some(_) => JsonError::Unexpected(self.pos),
                        });
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    members.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(members));
                        }
                        Some(_) => return Err(JsonError::Unexpected(self.pos)),
                        None => return Err(JsonError::Truncated),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(JsonError::Unexpected(self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        // `str::parse::<f64>` accepts exactly the JSON number grammar
        // over this alphabet (plus a few harmless extensions like `1.`),
        // and cannot produce NaN from it; infinities from overflow are
        // rejected below so `Json::Num` stays finite.
        let token = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii token");
        match token.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(JsonError::BadNumber(start)),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        let start = self.pos;
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::Truncated),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or(JsonError::Truncated)?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| JsonError::BadString(start))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::BadString(start))?;
                            // Surrogates are rejected rather than paired:
                            // the API never emits astral-plane escapes.
                            let c = char::from_u32(code).ok_or(JsonError::BadString(start))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        Some(_) => return Err(JsonError::BadString(start)),
                        None => return Err(JsonError::Truncated),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(JsonError::BadString(start)),
                Some(_) => {
                    // Multi-byte UTF-8 passes through verbatim (the body
                    // was validated as UTF-8 up front).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("validated utf-8");
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

/// Escapes `s` as the inside of a JSON string literal (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a string as a quoted JSON literal.
pub fn quote(s: &str) -> String {
    format!("\"{}\"", escape(s))
}
