//! Minimal HTTP/1.1 framing: an incremental request decoder and a
//! response writer, hand-rolled on byte buffers (no registry access, so
//! no hyper). The decoder is **total and bounded**: arbitrary bytes
//! produce a [`Request`], a need-more-bytes signal, or a typed
//! [`FrameError`] — never a panic — and both the header block and the
//! body are size-capped so an adversarial peer cannot balloon a
//! worker's memory. Truncated requests are bounded in *time* by the
//! server's socket read timeout, so they cannot hang a worker either.
//!
//! Scope: exactly what the API needs. `Content-Length` bodies only (no
//! chunked transfer), no continuation lines, case-insensitive header
//! names, `Connection: close` honoured. Requests with bodies the
//! decoder cannot frame are fatal to the connection — framing errors
//! never resynchronize.

use std::fmt;

/// Size caps for one request frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameLimits {
    /// Maximum bytes of the request line + headers (until CRLFCRLF).
    pub max_head_bytes: usize,
    /// Maximum declared `Content-Length`.
    pub max_body_bytes: usize,
}

impl Default for FrameLimits {
    fn default() -> Self {
        Self {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 256 * 1024,
        }
    }
}

/// One decoded request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …) as sent.
    pub method: String,
    /// Request target (path + optional query), as sent.
    pub target: String,
    /// Headers in order, names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the peer asked to close the connection after this
    /// exchange (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a byte stream failed to frame as a request. Every variant maps
/// to a specific HTTP status ([`FrameError::status`]); all are fatal to
/// the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The head grew past [`FrameLimits::max_head_bytes`] without a
    /// blank line.
    HeadTooLarge,
    /// Declared `Content-Length` exceeds [`FrameLimits::max_body_bytes`].
    BodyTooLarge(usize),
    /// The request line is not `METHOD SP TARGET SP HTTP/1.x`.
    BadRequestLine,
    /// A header line without a `:` or with an empty name.
    BadHeader,
    /// `Content-Length` is not a decimal integer (or conflicting
    /// duplicates).
    BadContentLength,
    /// The version is not HTTP/1.0 or HTTP/1.1.
    UnsupportedVersion,
}

impl FrameError {
    /// The HTTP status this framing error answers with.
    pub fn status(self) -> u16 {
        match self {
            FrameError::HeadTooLarge => 431,
            FrameError::BodyTooLarge(_) => 413,
            FrameError::UnsupportedVersion => 505,
            FrameError::BadRequestLine | FrameError::BadHeader | FrameError::BadContentLength => {
                400
            }
        }
    }

    /// Stable machine-readable code for the error body.
    pub fn code(self) -> &'static str {
        match self {
            FrameError::HeadTooLarge => "head-too-large",
            FrameError::BodyTooLarge(_) => "payload-too-large",
            FrameError::BadRequestLine => "bad-request-line",
            FrameError::BadHeader => "bad-header",
            FrameError::BadContentLength => "bad-content-length",
            FrameError::UnsupportedVersion => "unsupported-version",
        }
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::HeadTooLarge => write!(f, "request head exceeds the size cap"),
            FrameError::BodyTooLarge(n) => write!(f, "declared body of {n} bytes exceeds the cap"),
            FrameError::BadRequestLine => write!(f, "malformed request line"),
            FrameError::BadHeader => write!(f, "malformed header line"),
            FrameError::BadContentLength => write!(f, "malformed Content-Length"),
            FrameError::UnsupportedVersion => write!(f, "unsupported HTTP version"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Incremental request decoder: [`FrameDecoder::feed`] bytes as they
/// arrive, [`FrameDecoder::next_request`] yields complete requests.
/// Pipelined requests in one buffer decode in order.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    limits: FrameLimits,
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// A decoder under `limits`.
    pub fn new(limits: FrameLimits) -> Self {
        Self {
            limits,
            buf: Vec::new(),
        }
    }

    /// Appends bytes read from the peer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete request.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Decodes the next complete request out of the buffer.
    ///
    /// * `Ok(Some(_))` — a full request (consumed from the buffer).
    /// * `Ok(None)` — the buffer holds a valid prefix; feed more bytes.
    /// * `Err(_)` — the stream cannot frame; close the connection after
    ///   answering with [`FrameError::status`].
    ///
    /// # Errors
    ///
    /// Returns the [`FrameError`] describing the first malformed
    /// element.
    pub fn next_request(&mut self) -> Result<Option<Request>, FrameError> {
        let Some(head_end) = find_crlfcrlf(&self.buf) else {
            if self.buf.len() > self.limits.max_head_bytes {
                return Err(FrameError::HeadTooLarge);
            }
            return Ok(None);
        };
        if head_end > self.limits.max_head_bytes {
            return Err(FrameError::HeadTooLarge);
        }
        let (method, target, headers) = parse_head(&self.buf[..head_end])?;
        let content_length = content_length(&headers)?;
        if content_length > self.limits.max_body_bytes {
            return Err(FrameError::BodyTooLarge(content_length));
        }
        let total = head_end + 4 + content_length;
        if self.buf.len() < total {
            return Ok(None);
        }
        let body = self.buf[head_end + 4..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(Request {
            method,
            target,
            headers,
            body,
        }))
    }
}

/// Offset of the first `\r\n\r\n`, if any.
fn find_crlfcrlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Headers as (lowercased name, trimmed value) pairs in arrival order.
type Headers = Vec<(String, String)>;

/// Parses the head block (request line + header lines, no trailing
/// blank line).
fn parse_head(head: &[u8]) -> Result<(String, String, Headers), FrameError> {
    let text = std::str::from_utf8(head).map_err(|_| FrameError::BadRequestLine)?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(FrameError::BadRequestLine);
    };
    if method.is_empty()
        || !method
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-')
    {
        return Err(FrameError::BadRequestLine);
    }
    if target.is_empty() || !target.starts_with('/') {
        return Err(FrameError::BadRequestLine);
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(FrameError::UnsupportedVersion);
    }
    let mut headers = Vec::new();
    for line in lines {
        // Bare `\n` inside the head (split only breaks on `\r\n`) is
        // tolerated inside values but not names; the colon split below
        // catches structurally broken lines either way.
        let Some((name, value)) = line.split_once(':') else {
            return Err(FrameError::BadHeader);
        };
        let name = name.trim();
        if name.is_empty() || name.contains(' ') {
            return Err(FrameError::BadHeader);
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok((method.to_string(), target.to_string(), headers))
}

/// The declared `Content-Length` (0 when absent; duplicates must
/// agree).
fn content_length(headers: &[(String, String)]) -> Result<usize, FrameError> {
    let mut declared: Option<usize> = None;
    for (name, value) in headers {
        if name == "content-length" {
            let n: usize = value.parse().map_err(|_| FrameError::BadContentLength)?;
            if declared.is_some_and(|d| d != n) {
                return Err(FrameError::BadContentLength);
            }
            declared = Some(n);
        }
    }
    Ok(declared.unwrap_or(0))
}

/// Renders one HTTP/1.1 response. `keep_alive` controls the
/// `Connection` header (the server mirrors the request's wish).
pub fn render_response(status: u16, content_type: &str, body: &[u8], keep_alive: bool) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Internal Server Error",
    };
    let mut out = Vec::with_capacity(body.len() + 128);
    out.extend_from_slice(
        format!(
            "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
             Content-Length: {}\r\nConnection: {}\r\n\r\n",
            body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )
        .as_bytes(),
    );
    out.extend_from_slice(body);
    out
}

/// A decoded HTTP response (the client half of the framing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

/// Decodes one response from `buf`, returning it and the bytes
/// consumed; `Ok(None)` means feed more bytes.
///
/// # Errors
///
/// Returns [`FrameError`] on malformed status lines/headers or a body
/// larger than `limits` allows.
pub fn decode_response(
    buf: &[u8],
    limits: FrameLimits,
) -> Result<Option<(Response, usize)>, FrameError> {
    let Some(head_end) = find_crlfcrlf(buf) else {
        if buf.len() > limits.max_head_bytes {
            return Err(FrameError::HeadTooLarge);
        }
        return Ok(None);
    };
    let text = std::str::from_utf8(&buf[..head_end]).map_err(|_| FrameError::BadRequestLine)?;
    let mut lines = text.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let mut parts = status_line.splitn(3, ' ');
    let (Some(version), Some(status), _) = (parts.next(), parts.next(), parts.next()) else {
        return Err(FrameError::BadRequestLine);
    };
    if !version.starts_with("HTTP/1.") {
        return Err(FrameError::UnsupportedVersion);
    }
    let status: u16 = status.parse().map_err(|_| FrameError::BadRequestLine)?;
    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(FrameError::BadHeader);
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let len = content_length(&headers)?;
    if len > limits.max_body_bytes {
        return Err(FrameError::BodyTooLarge(len));
    }
    let total = head_end + 4 + len;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((
        Response {
            status,
            headers,
            body: buf[head_end + 4..total].to_vec(),
        },
        total,
    )))
}
