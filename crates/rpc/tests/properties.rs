//! Property tests over the wire layers: the JSON reader, the HTTP
//! framing decoder, and the API type roundtrips.
//!
//! The invariant under attack everywhere: **hostile bytes produce typed
//! errors, never panics** — a malformed, truncated or oversized request
//! must cost the daemon one error response (or one closed connection),
//! not a worker. All parsers here are pure functions, so "never hangs"
//! is structural (no I/O to block on; the server bounds slow peers with
//! socket read timeouts) and "never panics" is what these properties
//! pin.

use omniboost_models::ModelId;
use omniboost_rpc::api::{
    DepartReply, DepartRequest, ShutdownReply, ShutdownRequest, StatusReply, SubmitReply,
    SubmitRequest,
};
use omniboost_rpc::http::{
    decode_response, render_response, FrameDecoder, FrameError, FrameLimits,
};
use omniboost_rpc::json;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random bytes skewed toward JSON/HTTP-looking content so the parsers
/// see deep paths, not just instant rejections.
fn hostile_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let alphabet: &[u8] = b"{}[]\",:\\0123456789.eE+-truefalsnu \t\r\n\x00\xff/GET POST HTTP1.";
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.8) {
                alphabet[rng.gen_range(0..alphabet.len())]
            } else {
                rng.gen_range(0u8..=255)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The JSON parser is total: arbitrary bytes return `Ok` or a typed
    /// `JsonError`, and valid output re-parses to the same value.
    #[test]
    fn json_parse_is_total(seed in 0u64..10_000, len in 0usize..512) {
        let bytes = hostile_bytes(seed, len);
        if let Ok(value) = json::parse(&bytes) {
            // Anything that parsed must have come from UTF-8.
            assert!(std::str::from_utf8(&bytes).is_ok());
            let _ = value.get("x");
        }
    }

    /// Truncating a valid body at any byte yields a typed error (or a
    /// shorter valid value — possible when the cut lands after a
    /// complete number literal), never a panic.
    #[test]
    fn json_truncations_never_panic(cut in 1usize..60) {
        let body = br#"{"model": "alexnet", "tenant": 3, "min_tps": 1.5, "id": 42, "at_ms": 7}"#;
        let cut = cut.min(body.len() - 1);
        let _ = json::parse(&body[..cut]);
        let _ = SubmitRequest::from_json(&body[..cut]);
    }

    /// Escaped strings roundtrip through the writer + parser.
    #[test]
    fn json_string_roundtrip(seed in 0u64..10_000, len in 0usize..64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s: String = (0..len)
            .map(|_| char::from_u32(rng.gen_range(0u32..0xD7FF)).unwrap_or('?'))
            .collect();
        let parsed = json::parse(json::quote(&s).as_bytes()).expect("writer output parses");
        prop_assert_eq!(parsed.as_str(), Some(s.as_str()));
    }

    /// The frame decoder is total on arbitrary bytes in arbitrary chunk
    /// sizes: every call returns a request, a need-more signal, or a
    /// typed error — and the error, once hit, is stable.
    #[test]
    fn frame_decoder_is_total(seed in 0u64..10_000, len in 0usize..2048, chunk in 1usize..97) {
        let bytes = hostile_bytes(seed, len);
        let mut decoder = FrameDecoder::new(FrameLimits {
            max_head_bytes: 256,
            max_body_bytes: 512,
        });
        let mut errored = false;
        for piece in bytes.chunks(chunk) {
            decoder.feed(piece);
            loop {
                match decoder.next_request() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(e) => {
                        // Fatal and mapped to a real status.
                        prop_assert!(matches!(e.status(), 400 | 413 | 431 | 505));
                        errored = true;
                        break;
                    }
                }
            }
            if errored {
                break;
            }
        }
    }

    /// A well-formed request split at any byte boundary decodes exactly
    /// once with its body intact, regardless of chunking.
    #[test]
    fn frame_decoder_reassembles_split_requests(
        body_len in 0usize..300,
        chunk in 1usize..41,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let body: Vec<u8> = (0..body_len).map(|_| rng.gen_range(b' '..=b'~')).collect();
        let head = format!(
            "POST /v1/submit HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        let mut wire = head.into_bytes();
        wire.extend_from_slice(&body);

        let mut decoder = FrameDecoder::new(FrameLimits::default());
        let mut requests = Vec::new();
        for piece in wire.chunks(chunk) {
            decoder.feed(piece);
            while let Some(request) = decoder.next_request().expect("valid request") {
                requests.push(request);
            }
        }
        prop_assert_eq!(requests.len(), 1);
        prop_assert_eq!(requests[0].method.as_str(), "POST");
        prop_assert_eq!(requests[0].target.as_str(), "/v1/submit");
        prop_assert_eq!(&requests[0].body, &body);
        prop_assert_eq!(decoder.buffered(), 0);
    }

    /// Rendered responses decode back on the client side.
    #[test]
    fn response_roundtrip(status in proptest::sample::select(vec![200u16, 400, 404, 409, 503]),
                          body_len in 0usize..200) {
        let body = vec![b'x'; body_len];
        let wire = render_response(status, "application/json", &body, true);
        let (response, consumed) = decode_response(&wire, FrameLimits::default())
            .expect("well-formed")
            .expect("complete");
        prop_assert_eq!(consumed, wire.len());
        prop_assert_eq!(response.status, status);
        prop_assert_eq!(response.body, body);
    }

    /// API request/reply types roundtrip through their wire encoding.
    #[test]
    fn api_types_roundtrip(
        model in proptest::sample::select(ModelId::ALL.to_vec()),
        tenant in 0u32..8,
        min_tps in proptest::sample::select(vec![None, Some(0.5), Some(12.25)]),
        id in proptest::sample::select(vec![None, Some(1u64), Some(u64::MAX)]),
        at_ms in proptest::sample::select(vec![None, Some(0u64), Some(123_456)]),
    ) {
        let submit = SubmitRequest { model, tenant, min_tps, id, at_ms };
        prop_assert_eq!(
            SubmitRequest::from_json(submit.to_json().as_bytes()).expect("roundtrip"),
            submit
        );

        let depart = DepartRequest { id: id.unwrap_or(7), at_ms };
        prop_assert_eq!(
            DepartRequest::from_json(depart.to_json().as_bytes()).expect("roundtrip"),
            depart
        );

        let reply = SubmitReply {
            id: 9,
            outcome: "queued".to_string(),
            board: at_ms.map(|_| 3),
            queue_depth: tenant as usize,
        };
        prop_assert_eq!(
            SubmitReply::from_json(reply.to_json().as_bytes()).expect("roundtrip"),
            reply.clone()
        );

        let shutdown = ShutdownReply {
            digest: 0x1234_5678_9abc_def0,
            events: 10,
            placements: 4,
            left_in_queue: 2,
            mean_aggregate_tps: 5.125,
            cache_archived_segments: 1,
        };
        prop_assert_eq!(
            ShutdownReply::from_json(shutdown.to_json().as_bytes()).expect("roundtrip"),
            shutdown
        );
    }
}

#[test]
fn oversized_head_is_431() {
    let mut decoder = FrameDecoder::new(FrameLimits {
        max_head_bytes: 64,
        max_body_bytes: 64,
    });
    decoder.feed("GET /".as_bytes());
    decoder.feed("a".repeat(200).as_bytes());
    let err = decoder.next_request().expect_err("head over cap");
    assert_eq!(err, FrameError::HeadTooLarge);
    assert_eq!(err.status(), 431);
}

#[test]
fn oversized_body_is_413_without_buffering_it() {
    let mut decoder = FrameDecoder::new(FrameLimits {
        max_head_bytes: 1024,
        max_body_bytes: 128,
    });
    // Declared length alone must trip the cap — the decoder rejects
    // before the body bytes arrive, so memory stays bounded.
    decoder.feed(b"POST /v1/submit HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n");
    let err = decoder.next_request().expect_err("body over cap");
    assert_eq!(err, FrameError::BodyTooLarge(1_000_000));
    assert_eq!(err.status(), 413);
}

#[test]
fn adversarial_nesting_is_bounded() {
    // 100k opening brackets: depth bound must answer with TooDeep long
    // before the recursion could touch the worker's stack.
    let bomb = "[".repeat(100_000);
    assert_eq!(json::parse(bomb.as_bytes()), Err(json::JsonError::TooDeep));
}

#[test]
fn conflicting_content_lengths_are_rejected() {
    let mut decoder = FrameDecoder::new(FrameLimits::default());
    decoder.feed(b"POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\nabc");
    assert_eq!(
        decoder.next_request(),
        Err(FrameError::BadContentLength),
        "smuggling-shaped duplicates must not pick one silently"
    );
}

#[test]
fn unknown_model_is_a_typed_error() {
    let err = SubmitRequest::from_json(br#"{"model": "not-a-net"}"#).expect_err("unknown model");
    assert_eq!(err.code, omniboost_rpc::ErrorCode::UnknownModel);
    assert_eq!(err.code.status(), 422);
}

#[test]
fn status_and_shutdown_request_parse_edge_cases() {
    // Empty body = default shutdown.
    assert_eq!(
        ShutdownRequest::from_json(b"").expect("empty ok"),
        ShutdownRequest { horizon_ms: None }
    );
    assert_eq!(
        ShutdownRequest::from_json(b"{\"horizon_ms\": 5000}").expect("explicit"),
        ShutdownRequest {
            horizon_ms: Some(5_000)
        }
    );
    // A status reply roundtrips.
    let status = StatusReply {
        clock_ms: 12,
        boards: 2,
        resident_jobs: 3,
        queue_depth: 1,
        draining: true,
        arrivals: 9,
        placements: 6,
        cache_preloaded_entries: 4,
    };
    assert_eq!(
        StatusReply::from_json(status.to_json().as_bytes()).expect("roundtrip"),
        status
    );
    let depart = DepartReply { id: 3, known: true };
    assert_eq!(
        DepartReply::from_json(depart.to_json().as_bytes()).expect("roundtrip"),
        depart
    );
}
