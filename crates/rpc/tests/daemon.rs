//! Loopback integration tests over a live daemon: drain semantics,
//! graceful shutdown with cache archiving, warm reboot, and the
//! wire-vs-in-process digest parity pin.

use omniboost_hw::{AnalyticModel, Board};
use omniboost_models::{ArrivalProcess, ArrivalTrace, ModelId, TraceConfig};
use omniboost_rpc::api::{DepartRequest, ShutdownRequest, SubmitRequest};
use omniboost_rpc::client::{ClientConfig, RpcClient};
use omniboost_rpc::loadgen::{replay_trace, StampMode};
use omniboost_rpc::servers::{RpcServer, ServerConfig};
use omniboost_serve::{OnlineConfig, SearchBudget, ServingConfig, ServingSim};
use std::path::PathBuf;

const HORIZON_MS: u64 = 30_000;

fn quick_online() -> OnlineConfig {
    OnlineConfig {
        cold_budget: SearchBudget::with_iterations(60),
        warm_budget: SearchBudget::with_iterations(24),
        ..OnlineConfig::default()
    }
}

fn serving_config(cache_path: Option<PathBuf>) -> ServingConfig {
    ServingConfig {
        online: quick_online(),
        cache_path,
        ..ServingConfig::warm()
    }
}

fn boot(cache_path: Option<PathBuf>, boards: usize) -> (RpcServer<AnalyticModel>, RpcClient) {
    let server = RpcServer::start(
        ServerConfig::default(),
        vec![Board::hikey970(); boards],
        serving_config(cache_path),
        AnalyticModel::new,
    )
    .expect("bind loopback");
    let client =
        RpcClient::connect(ClientConfig::new(server.addr().to_string())).expect("dial daemon");
    (server, client)
}

/// Drain mode refuses new submits with the distinct `draining` code
/// while in-flight jobs keep completing; graceful shutdown archives the
/// evaluation cache, and a rebooted daemon reports the warm preloads.
#[test]
fn drain_refuses_submits_then_shutdown_archives_and_reboot_preloads() {
    let dir = std::env::temp_dir().join(format!("omniboost-rpc-drain-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let cache = dir.join("daemon-cache.bin");
    let _ = std::fs::remove_file(&cache);

    let (server, mut client) = boot(Some(cache.clone()), 1);

    // Two residents, virtual-stamped so the run is deterministic.
    for (id, at_ms) in [(1u64, 0u64), (2, 100)] {
        let reply = client
            .submit(&SubmitRequest {
                model: ModelId::AlexNet,
                tenant: 0,
                min_tps: None,
                id: Some(id),
                at_ms: Some(at_ms),
            })
            .expect("admitted");
        assert_eq!(reply.outcome, "placed");
    }
    let status = client.status().expect("status");
    assert_eq!(status.resident_jobs, 2);
    assert!(!status.draining);

    // Close the gate.
    let drained = client.drain().expect("drain");
    assert!(drained.draining);
    assert_eq!(drained.resident_jobs, 2);

    // New admissions now answer 503 with the distinct drain code...
    let refused = client
        .submit(&SubmitRequest::simple(ModelId::MobileNet))
        .expect_err("gate closed");
    assert!(refused.is_code("draining"), "got {refused}");
    match refused {
        omniboost_rpc::RpcError::Api { status, .. } => assert_eq!(status, 503),
        other => panic!("expected api error, got {other}"),
    }

    // ...while in-flight jobs still complete.
    let depart = client
        .depart(&DepartRequest {
            id: 1,
            at_ms: Some(5_000),
        })
        .expect("depart during drain");
    assert!(depart.known);
    let status = client.status().expect("status during drain");
    assert_eq!(status.resident_jobs, 1);
    assert!(status.draining);

    // Metrics stay scrapeable mid-drain and carry the pool counters.
    let metrics = client.metrics().expect("metrics");
    assert!(metrics.contains("omniboost_draining 1"));
    assert!(metrics.contains("omniboost_pool_submitted 2"));
    assert!(metrics.contains("omniboost_pool_retries 0"));

    // Graceful shutdown: the remaining resident counts as left running;
    // nothing was lost (arrivals == placements, nothing queued).
    let reply = client
        .shutdown(&ShutdownRequest {
            horizon_ms: Some(HORIZON_MS),
        })
        .expect("shutdown");
    assert_eq!(reply.events, 3, "2 submits + 1 depart");
    assert_eq!(reply.placements, 2);
    assert_eq!(reply.left_in_queue, 0);
    assert!(reply.cache_archived_segments >= 1, "cache archived on exit");
    assert!(cache.exists(), "archive written to the configured path");

    let report = server.join().expect("finished run parked for join");
    assert_eq!(report.digest(), reply.digest);

    // Warm reboot: the fresh daemon preloads the archived segments and
    // says so over the wire.
    let (server2, mut client2) = boot(Some(cache.clone()), 1);
    let status = client2.status().expect("status after reboot");
    assert!(
        status.cache_preloaded_entries > 0,
        "rebooted daemon must report warm preloads"
    );
    client2
        .shutdown(&ShutdownRequest::default())
        .expect("shutdown reboot");
    server2.join();
    let _ = std::fs::remove_file(&cache);
    let _ = std::fs::remove_dir(&dir);
}

/// The same seeded trace produces the **same digest** through the
/// daemon (wire path, virtual stamps) as through the in-process
/// `ServingSim` — the wall clock never leaks into serving decisions.
#[test]
fn wire_replay_matches_in_process_digest() {
    let trace = ArrivalTrace::generate(
        ArrivalProcess::Poisson { rate_per_s: 0.8 },
        &TraceConfig {
            horizon_ms: HORIZON_MS,
            mean_lifetime_ms: 8_000.0,
            ..TraceConfig::default()
        },
        7,
    );

    // In-process reference.
    let mut sim = ServingSim::new(
        vec![Board::hikey970(); 2],
        serving_config(None),
        AnalyticModel::new,
    );
    let reference = sim.run(&trace, HORIZON_MS);

    // Wire path: same trace, virtual stamps, same horizon.
    let (server, mut client) = boot(None, 2);
    let loadgen = replay_trace(&mut client, &trace, StampMode::Virtual).expect("replay");
    assert_eq!(loadgen.requests, trace.len());
    assert_eq!(
        loadgen.placed + loadgen.queued + loadgen.rejected,
        trace.arrivals(),
        "every arrival got a definite outcome over the wire"
    );
    let reply = client
        .shutdown(&ShutdownRequest {
            horizon_ms: Some(HORIZON_MS),
        })
        .expect("shutdown");
    let report = server.join().expect("daemon report");

    assert_eq!(
        reply.digest,
        reference.digest(),
        "wire and in-process replays must be bit-for-bit identical"
    );
    assert_eq!(report.digest(), reference.digest());
    assert_eq!(report.ticks.len(), reference.ticks.len());
    assert_eq!(report.summary.placements, reference.summary.placements);
    assert_eq!(
        reply.mean_aggregate_tps,
        reference.summary.mean_aggregate_tps
    );
}

/// The `/metrics` exposition carries full Prometheus histogram
/// families (`# TYPE … histogram`, cumulative `_bucket` series, `_sum`,
/// `_count`) on top of the flat lines, and `GET /v1/trace` returns
/// Chrome `trace_event` JSON whose rows are time-sorted and span at
/// least the core, serve and rpc layers.
#[test]
fn metrics_histograms_and_trace_export() {
    let (server, mut client) = boot(None, 1);

    // Enough virtual-stamped traffic that decisions actually happen
    // (the second submit closes the first tick and flushes the board).
    for (id, at_ms) in [(1u64, 0u64), (2, 100), (3, 200)] {
        client
            .submit(&SubmitRequest {
                model: ModelId::AlexNet,
                tenant: 0,
                min_tps: None,
                id: Some(id),
                at_ms: Some(at_ms),
            })
            .expect("admitted");
    }

    let metrics = client.metrics().expect("metrics");
    // The pre-histogram flat lines survive byte-identically.
    assert!(metrics.contains("omniboost_pool_submitted 3"));
    // At least three histogram families, each with the mandatory +Inf
    // bucket, _sum and _count samples.
    let families: Vec<&str> = metrics
        .lines()
        .filter(|l| l.starts_with("# TYPE ") && l.ends_with(" histogram"))
        .map(|l| l.split_whitespace().nth(2).expect("family name"))
        .collect();
    assert!(
        families.len() >= 3,
        "want >=3 histogram families, got {families:?}"
    );
    for family in &families {
        assert!(
            metrics.contains(&format!("{family}_bucket{{le=\"+Inf\"}}")),
            "{family} missing +Inf bucket"
        );
        assert!(metrics.contains(&format!("{family}_sum")));
        assert!(metrics.contains(&format!("{family}_count")));
        // Cumulative bucket counts never decrease.
        let mut last = 0u64;
        for line in metrics
            .lines()
            .filter(|l| l.starts_with(&format!("{family}_bucket{{")))
        {
            let n: u64 = line
                .rsplit(' ')
                .next()
                .and_then(|v| v.parse().ok())
                .expect("bucket count");
            assert!(n >= last, "cumulative counts decreased in {family}");
            last = n;
        }
    }

    // The trace export parses as JSON, is stamped monotonically, and
    // covers the rpc, serve and core layers.
    let trace = client.trace().expect("trace");
    let parsed = omniboost_rpc::json::parse(trace.as_bytes()).expect("trace is valid JSON");
    let events = match parsed.get("traceEvents") {
        Some(omniboost_rpc::Json::Arr(rows)) => rows.clone(),
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert!(!events.is_empty(), "spans were recorded");
    let mut last_ts = 0.0f64;
    let mut cats = std::collections::BTreeSet::new();
    for row in &events {
        let ts = row
            .get("ts")
            .and_then(|v| v.as_f64())
            .expect("every row has ts");
        assert!(ts >= last_ts, "rows sorted by ts");
        last_ts = ts;
        if let Some(cat) = row.get("cat").and_then(|v| v.as_str()) {
            cats.insert(cat.to_string());
        }
    }
    for layer in ["core", "serve", "rpc"] {
        assert!(cats.contains(layer), "no {layer} spans in {cats:?}");
    }

    client
        .shutdown(&ShutdownRequest::default())
        .expect("shutdown");
    server.join();
}

/// Unknown routes, wrong methods and malformed bodies answer typed
/// errors without disturbing the daemon.
#[test]
fn error_paths_answer_typed_codes() {
    let (server, mut client) = boot(None, 1);

    let err = client
        .submit(&SubmitRequest {
            model: ModelId::AlexNet,
            tenant: 0,
            min_tps: None,
            id: None,
            at_ms: None,
        })
        .expect("daemon up");
    assert_eq!(err.outcome, "placed");

    // The daemon survives a malformed body on the same connection.
    let summary = client.summary().expect("summary");
    assert_eq!(summary.get("arrivals").and_then(|v| v.as_u64()), Some(1));

    client
        .shutdown(&ShutdownRequest::default())
        .expect("shutdown");
    server.join();
}
