//! Named multi-DNN application scenarios and **online arrival traces**.
//!
//! The paper's introduction motivates multi-DNN workloads with concrete
//! application classes — "digital assistants, object detection, and
//! virtual/augmented reality services" — each of which runs several
//! networks concurrently. These presets give examples and downstream
//! users realistic named mixes instead of raw model lists.
//!
//! The paper's evaluation schedules a *fixed* mix once; production
//! serving faces DNN jobs that arrive and depart over time. The trace
//! machinery here ([`ArrivalTrace`], [`ArrivalProcess`], [`TraceConfig`])
//! turns three classic traffic shapes — Poisson, bursty on/off, and a
//! diurnal ramp — into seeded, reproducible event sequences the serving
//! runtime (`omniboost-serve`) replays, so scenario diversity is a
//! first-class input rather than hand-written test fixtures.

use crate::zoo::ModelId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A named concurrent-DNN application bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Scenario {
    /// Voice/visual digital assistant: a light always-on keyword/vision
    /// path plus a heavier understanding model.
    DigitalAssistant,
    /// Camera object-detection stack: detector backbone + classifier +
    /// lightweight tracker features.
    ObjectDetection,
    /// AR/VR headset: scene understanding, hand/pose path and a HUD
    /// classifier running together.
    AugmentedReality,
    /// Smart-camera surveillance hub: maximum concurrent load the board
    /// sustains (5 DNNs, §V-A's upper limit).
    SurveillanceHub,
}

impl Scenario {
    /// All presets.
    pub const ALL: [Scenario; 4] = [
        Scenario::DigitalAssistant,
        Scenario::ObjectDetection,
        Scenario::AugmentedReality,
        Scenario::SurveillanceHub,
    ];

    /// The zoo models this scenario runs concurrently.
    ///
    /// Compositions follow the paper's workload construction: mixes of
    /// 2–5 networks spanning light (MobileNet/SqueezeNet) and heavy
    /// (VGG/ResNet/Inception) ends of the dataset.
    pub fn models(self) -> Vec<ModelId> {
        match self {
            Scenario::DigitalAssistant => vec![ModelId::MobileNet, ModelId::ResNet34],
            Scenario::ObjectDetection => {
                vec![ModelId::ResNet50, ModelId::SqueezeNet, ModelId::MobileNet]
            }
            Scenario::AugmentedReality => vec![
                ModelId::InceptionV3,
                ModelId::MobileNet,
                ModelId::SqueezeNet,
                ModelId::ResNet34,
            ],
            Scenario::SurveillanceHub => vec![
                ModelId::Vgg16,
                ModelId::ResNet50,
                ModelId::MobileNet,
                ModelId::SqueezeNet,
                ModelId::AlexNet,
            ],
        }
    }

    /// Number of concurrent DNNs.
    pub fn concurrency(self) -> usize {
        self.models().len()
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Scenario::DigitalAssistant => "digital-assistant",
            Scenario::ObjectDetection => "object-detection",
            Scenario::AugmentedReality => "augmented-reality",
            Scenario::SurveillanceHub => "surveillance-hub",
        };
        f.write_str(s)
    }
}

/// The service-level class a job is submitted under — the priority
/// axis of the admission mempool (`omniboost-serve`'s `Mempool`
/// queue-jumps [`SloClass::Guaranteed`] entries ahead of best-effort
/// ones on every drain, and placement prefers boards whose projected
/// load honors the throughput floor).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SloClass {
    /// The job carries a throughput floor: the scheduler should keep it
    /// attaining at least `min_tps` inferences/s while resident, and
    /// admission lets it jump the queue ahead of best-effort work.
    Guaranteed {
        /// The floor, in inferences/s. Finite and non-negative by
        /// contract (trace generators and benches only produce such
        /// values; the manual `Eq` below relies on it).
        min_tps: f64,
    },
    /// No floor: the job takes whatever capacity the guaranteed class
    /// leaves. The default — and the only class pre-SLO traces carry,
    /// so existing seeded traces replay unchanged.
    #[default]
    BestEffort,
}

// `min_tps` is finite by contract (never NaN), so equality is total.
impl Eq for SloClass {}

impl SloClass {
    /// The throughput floor, or `None` for best-effort work.
    pub fn min_tps(&self) -> Option<f64> {
        match self {
            SloClass::Guaranteed { min_tps } => Some(*min_tps),
            SloClass::BestEffort => None,
        }
    }

    /// Whether this is the guaranteed class.
    pub fn is_guaranteed(&self) -> bool {
        matches!(self, SloClass::Guaranteed { .. })
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            SloClass::Guaranteed { .. } => "guaranteed",
            SloClass::BestEffort => "best-effort",
        }
    }
}

impl fmt::Display for SloClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One DNN job of an online trace: a model to serve until departure,
/// tagged with the tenant that submitted it and the SLO class it was
/// submitted under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpec {
    /// Trace-unique identifier (arrival order, starting at 1).
    pub id: u64,
    /// The network this job runs.
    pub model: ModelId,
    /// Submitting tenant (multi-tenant fleets key fairness stats on it).
    pub tenant: u32,
    /// Service-level class ([`SloClass::BestEffort`] unless the trace
    /// or caller says otherwise).
    pub slo: SloClass,
}

impl JobSpec {
    /// A best-effort job — the common case in tests and hand-built
    /// traces.
    pub fn new(id: u64, model: ModelId, tenant: u32) -> Self {
        Self {
            id,
            model,
            tenant,
            slo: SloClass::BestEffort,
        }
    }

    /// The same job submitted under [`SloClass::Guaranteed`] with the
    /// given floor.
    pub fn guaranteed(self, min_tps: f64) -> Self {
        Self {
            slo: SloClass::Guaranteed { min_tps },
            ..self
        }
    }
}

/// A workload-changing event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobEvent {
    /// A new DNN job enters the system.
    Arrive(JobSpec),
    /// The job with this id leaves (model finished / tenant cancelled).
    Depart {
        /// Id from the matching [`JobEvent::Arrive`].
        job_id: u64,
    },
}

/// A timestamped [`JobEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Milliseconds since trace start.
    pub at_ms: u64,
    /// What happens.
    pub event: JobEvent,
}

/// A fleet-lifecycle event — the board-level counterpart of
/// [`JobEvent`]. Board indices refer to the orchestrator's slot order:
/// the initial fleet occupies `0..n` and every join appends the next
/// index, so an index names the same physical board for the whole trace
/// (failed boards keep their index; it is never reused).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetEvent {
    /// The board dies abruptly: its resident jobs must be evacuated
    /// (re-placed or queued) — never silently lost.
    BoardFail {
        /// Slot index of the failing board.
        board: usize,
    },
    /// The board is taken out of rotation gracefully (maintenance):
    /// same evacuation path as a failure, but semantically planned.
    BoardDrain {
        /// Slot index of the draining board.
        board: usize,
    },
    /// A new board joins the fleet and becomes a placement and
    /// rebalance target.
    BoardJoin {
        /// Index into the fleet spec's join-profile pool (the models
        /// crate cannot see hardware types; the orchestrator resolves
        /// the index to a board profile).
        profile: usize,
    },
    /// The board browns out: it stays up but swaps to a weaker hardware
    /// profile in place (thermal throttle, a single accelerator lost).
    /// Resident jobs are **not** force-evacuated — they re-price under
    /// the degraded profile and migrate only if the priced gain clears
    /// the rebalancer bar; jobs the weaker profile cannot admit at all
    /// are requeued.
    BoardDegrade {
        /// Slot index of the degrading board.
        board: usize,
        /// Index into the fleet spec's degrade-profile pool (resolved
        /// by the orchestrator, like [`FleetEvent::BoardJoin`]).
        profile: usize,
    },
    /// A degraded board recovers its original hardware profile
    /// (brown-out ends). A no-op for boards that were never degraded.
    BoardRecover {
        /// Slot index of the recovering board.
        board: usize,
    },
}

/// A timestamped [`FleetEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetTraceEvent {
    /// Milliseconds since trace start.
    pub at_ms: u64,
    /// What happens to the fleet.
    pub event: FleetEvent,
}

/// Parameters of a seeded [`FleetScript`] generation.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetScriptConfig {
    /// Script length in milliseconds; no event is stamped past it.
    pub horizon_ms: u64,
    /// Boards alive at t = 0 (slot indices `0..initial_boards`).
    pub initial_boards: usize,
    /// Number of board profiles joins draw from (uniformly).
    pub join_profiles: usize,
    /// Mean time between board failures (exponential; 0 disables).
    pub mean_fail_interval_ms: f64,
    /// Mean time between graceful drains (exponential; 0 disables).
    pub mean_drain_interval_ms: f64,
    /// Mean time between board joins (exponential; 0 disables).
    pub mean_join_interval_ms: f64,
    /// Mean time between brown-outs (exponential; 0 disables). A
    /// degrade targets an alive, not-yet-degraded board; with every
    /// board already degraded the draw is dropped.
    pub mean_degrade_interval_ms: f64,
    /// Mean time between brown-out recoveries (exponential; 0
    /// disables). A recover targets a currently-degraded board; with
    /// none degraded the draw is dropped.
    pub mean_recover_interval_ms: f64,
    /// Number of degrade profiles brown-outs draw from (uniformly).
    pub degrade_profiles: usize,
    /// Mean time between flap sequences (exponential; 0 disables): a
    /// flap fails an alive board and schedules its rejoin
    /// [`FleetScriptConfig::flap_down_ms`] later — the warm-reboot
    /// scenario (the orchestrator preloads the rejoining profile's
    /// cache-archive segment by fingerprint).
    pub mean_flap_interval_ms: f64,
    /// Downtime between a flap's fail and its rejoin. Rejoin stamps
    /// past the horizon are dropped (the board stays down).
    pub flap_down_ms: u64,
}

impl Default for FleetScriptConfig {
    /// A 4-board fleet over one minute with one failure and one join
    /// expected per trace; drains and every chaos class (degrade,
    /// recover, flap) off — a zero mean draws nothing from the RNG, so
    /// pre-chaos scripts replay bit-for-bit.
    fn default() -> Self {
        Self {
            horizon_ms: 60_000,
            initial_boards: 4,
            join_profiles: 1,
            mean_fail_interval_ms: 60_000.0,
            mean_drain_interval_ms: 0.0,
            mean_join_interval_ms: 60_000.0,
            mean_degrade_interval_ms: 0.0,
            mean_recover_interval_ms: 0.0,
            degrade_profiles: 1,
            mean_flap_interval_ms: 0.0,
            flap_down_ms: 2_000,
        }
    }
}

/// A seeded, reproducible sequence of board-lifecycle events, sorted by
/// timestamp — the fleet-level half of an orchestrated trace. The
/// orchestrator interleaves it with an [`ArrivalTrace`] at replay time
/// (fleet events apply before job events at equal stamps, so a board
/// failing at `t` never receives the arrival stamped `t`).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetScript {
    events: Vec<FleetTraceEvent>,
}

impl FleetScript {
    /// Wraps an explicit event list (benches hand-build deterministic
    /// failure scenarios), sorting it by stamp. Event order at equal
    /// stamps is preserved.
    pub fn new(mut events: Vec<FleetTraceEvent>) -> Self {
        events.sort_by_key(|e| e.at_ms);
        Self { events }
    }

    /// An empty script (a static fleet).
    pub fn none() -> Self {
        Self { events: Vec::new() }
    }

    /// Generates a script: each event class fires at exponential
    /// intervals around its configured mean, targets are drawn uniformly
    /// over the boards alive at that instant, and the generator tracks
    /// the alive set so a script can never fail a dead board — or the
    /// **last** board (a fleet must keep serving; a fail/drain drawn
    /// while one board remains is dropped).
    ///
    /// # Panics
    ///
    /// Panics when `initial_boards` is 0 or a non-zero mean interval is
    /// negative or non-finite.
    pub fn generate(config: &FleetScriptConfig, seed: u64) -> Self {
        assert!(config.initial_boards > 0, "a fleet starts with a board");
        let mut rng = StdRng::seed_from_u64(seed);
        let exp = |rng: &mut StdRng, mean: f64| -> f64 {
            assert!(mean >= 0.0 && mean.is_finite(), "bad mean interval");
            -mean * (1.0 - rng.gen_range(0.0f64..1.0)).ln()
        };
        let horizon = config.horizon_ms as f64;
        // Next candidate stamp per class (disabled classes park at the
        // horizon and never fire).
        let draw = |rng: &mut StdRng, from: f64, mean: f64| -> f64 {
            if mean == 0.0 {
                horizon
            } else {
                from + exp(rng, mean)
            }
        };
        let mut next_fail = draw(&mut rng, 0.0, config.mean_fail_interval_ms);
        let mut next_drain = draw(&mut rng, 0.0, config.mean_drain_interval_ms);
        let mut next_join = draw(&mut rng, 0.0, config.mean_join_interval_ms);
        let mut next_degrade = draw(&mut rng, 0.0, config.mean_degrade_interval_ms);
        let mut next_recover = draw(&mut rng, 0.0, config.mean_recover_interval_ms);
        let mut next_flap = draw(&mut rng, 0.0, config.mean_flap_interval_ms);
        let mut alive: Vec<usize> = (0..config.initial_boards).collect();
        let mut degraded: Vec<usize> = Vec::new();
        // Rejoin stamps of in-flight flaps, kept sorted ascending so the
        // earliest pending rejoin competes with the class stamps and the
        // alive set stays time-consistent.
        let mut pending_rejoins: Vec<f64> = Vec::new();
        let mut next_index = config.initial_boards;
        let mut events = Vec::new();
        loop {
            let next_rejoin = pending_rejoins.first().copied().unwrap_or(horizon);
            let t = next_fail
                .min(next_drain)
                .min(next_join)
                .min(next_degrade)
                .min(next_recover)
                .min(next_flap)
                .min(next_rejoin);
            if t >= horizon {
                break;
            }
            let at_ms = t as u64;
            if t == next_rejoin {
                // A flapped board comes back: same join path as a fresh
                // board (new index, profile drawn from the join pool).
                pending_rejoins.remove(0);
                let profile = rng.gen_range(0..config.join_profiles.max(1));
                events.push(FleetTraceEvent {
                    at_ms,
                    event: FleetEvent::BoardJoin { profile },
                });
                alive.push(next_index);
                next_index += 1;
            } else if t == next_join {
                let profile = rng.gen_range(0..config.join_profiles.max(1));
                events.push(FleetTraceEvent {
                    at_ms,
                    event: FleetEvent::BoardJoin { profile },
                });
                alive.push(next_index);
                next_index += 1;
                next_join = draw(&mut rng, t, config.mean_join_interval_ms);
            } else if t == next_degrade {
                // The target and profile draws happen even when every
                // alive board is already degraded (event dropped), so
                // scripts of different classes stay aligned per seed.
                let eligible: Vec<usize> = alive
                    .iter()
                    .copied()
                    .filter(|b| !degraded.contains(b))
                    .collect();
                let pick = rng.gen_range(0..eligible.len().max(1));
                let profile = rng.gen_range(0..config.degrade_profiles.max(1));
                if !eligible.is_empty() {
                    let board = eligible[pick];
                    degraded.push(board);
                    events.push(FleetTraceEvent {
                        at_ms,
                        event: FleetEvent::BoardDegrade { board, profile },
                    });
                }
                next_degrade = draw(&mut rng, t, config.mean_degrade_interval_ms);
            } else if t == next_recover {
                let pick = rng.gen_range(0..degraded.len().max(1));
                if !degraded.is_empty() {
                    let board = degraded.remove(pick);
                    events.push(FleetTraceEvent {
                        at_ms,
                        event: FleetEvent::BoardRecover { board },
                    });
                }
                next_recover = draw(&mut rng, t, config.mean_recover_interval_ms);
            } else if t == next_flap {
                // Flap = fail now, rejoin flap_down_ms later. The fail
                // half follows the fail rules (never the last board);
                // the rejoin is only scheduled when the fail fired and
                // lands inside the horizon.
                let pick = rng.gen_range(0..alive.len().max(1));
                if alive.len() > 1 {
                    let board = alive.remove(pick);
                    degraded.retain(|b| *b != board);
                    events.push(FleetTraceEvent {
                        at_ms,
                        event: FleetEvent::BoardFail { board },
                    });
                    let rejoin = t + config.flap_down_ms.max(1) as f64;
                    if rejoin < horizon {
                        let pos = pending_rejoins
                            .iter()
                            .position(|r| *r > rejoin)
                            .unwrap_or(pending_rejoins.len());
                        pending_rejoins.insert(pos, rejoin);
                    }
                }
                next_flap = draw(&mut rng, t, config.mean_flap_interval_ms);
            } else {
                let is_fail = t == next_fail;
                // The target draw happens even when the event is dropped
                // (last board standing), so scripts of different classes
                // stay aligned per seed.
                let pick = rng.gen_range(0..alive.len().max(1));
                if alive.len() > 1 {
                    let board = alive.remove(pick);
                    degraded.retain(|b| *b != board);
                    events.push(FleetTraceEvent {
                        at_ms,
                        event: if is_fail {
                            FleetEvent::BoardFail { board }
                        } else {
                            FleetEvent::BoardDrain { board }
                        },
                    });
                }
                if is_fail {
                    next_fail = draw(&mut rng, t, config.mean_fail_interval_ms);
                } else {
                    next_drain = draw(&mut rng, t, config.mean_drain_interval_ms);
                }
            }
        }
        Self::new(events)
    }

    /// The events, in replay order.
    pub fn events(&self) -> &[FleetTraceEvent] {
        &self.events
    }

    /// Total event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the script has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// The arrival process shaping a trace's traffic over time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant rate — the steady-traffic
    /// baseline.
    Poisson {
        /// Mean arrivals per second.
        rate_per_s: f64,
    },
    /// On/off bursts: arrivals at `on_rate_per_s` during each ON window,
    /// silence during each OFF window — flash-crowd traffic.
    Bursty {
        /// Arrival rate inside ON windows.
        on_rate_per_s: f64,
        /// ON window length.
        on_ms: u64,
        /// OFF window length.
        off_ms: u64,
    },
    /// A smooth day-cycle ramp: the rate follows
    /// `peak · (1 − cos(2πt/period))/2`, rising from silence to the peak
    /// and back once per period.
    DiurnalRamp {
        /// Rate at the top of the ramp.
        peak_rate_per_s: f64,
        /// Full cycle length.
        period_ms: u64,
    },
}

impl fmt::Display for ArrivalProcess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrivalProcess::Poisson { .. } => f.write_str("poisson"),
            ArrivalProcess::Bursty { .. } => f.write_str("bursty"),
            ArrivalProcess::DiurnalRamp { .. } => f.write_str("diurnal"),
        }
    }
}

/// Shared trace parameters (everything but the arrival process shape).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Trace length in milliseconds; no event is stamped past it.
    pub horizon_ms: u64,
    /// Mean job lifetime (exponentially distributed). Jobs whose
    /// departure falls past the horizon simply never depart within the
    /// trace — long-running services are part of the workload.
    pub mean_lifetime_ms: f64,
    /// Model pool arrivals draw from, uniformly.
    pub models: Vec<ModelId>,
    /// Number of tenants jobs are attributed to (uniformly, unless
    /// [`TraceConfig::tenant_weights`] skews the draw).
    pub tenants: u32,
    /// Relative arrival weights per tenant (one entry per tenant);
    /// empty means uniform. Skewed-tenant fairness scenarios use e.g.
    /// `[7.0, 1.0, 1.0, 1.0]` to hand tenant 0 seventy percent of the
    /// traffic. Leaving this empty keeps the per-seed RNG stream (and
    /// therefore every existing trace) bit-for-bit unchanged.
    pub tenant_weights: Vec<f64>,
    /// Fraction of arrivals submitted as [`SloClass::Guaranteed`]
    /// (`0.0..=1.0`). `0.0` — the default — draws nothing from the RNG,
    /// so pre-SLO traces replay bit-for-bit and every job stays
    /// best-effort.
    pub guaranteed_share: f64,
    /// Throughput floor stamped on guaranteed arrivals (inferences/s).
    /// Only read when [`TraceConfig::guaranteed_share`] is positive.
    pub guaranteed_min_tps: f64,
}

impl Default for TraceConfig {
    /// One minute of traffic, 15 s mean lifetimes, a light-to-heavy model
    /// blend spanning the zoo, 4 tenants.
    fn default() -> Self {
        Self {
            horizon_ms: 60_000,
            mean_lifetime_ms: 15_000.0,
            models: vec![
                ModelId::MobileNet,
                ModelId::SqueezeNet,
                ModelId::AlexNet,
                ModelId::ResNet34,
                ModelId::ResNet50,
                ModelId::Vgg16,
                ModelId::InceptionV3,
            ],
            tenants: 4,
            tenant_weights: Vec::new(),
            guaranteed_share: 0.0,
            guaranteed_min_tps: 0.0,
        }
    }
}

/// A seeded, reproducible sequence of arrival/departure events, sorted
/// by timestamp (departures before arrivals at equal stamps, so capacity
/// freed by a departure is available to a same-instant arrival).
///
/// ```
/// use omniboost_models::scenarios::{ArrivalProcess, ArrivalTrace, TraceConfig};
///
/// let trace = ArrivalTrace::generate(
///     ArrivalProcess::Poisson { rate_per_s: 0.5 },
///     &TraceConfig::default(),
///     42,
/// );
/// assert_eq!(trace, ArrivalTrace::generate(
///     ArrivalProcess::Poisson { rate_per_s: 0.5 },
///     &TraceConfig::default(),
///     42,
/// ), "same seed, same trace");
/// assert!(trace.arrivals() > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTrace {
    events: Vec<TraceEvent>,
}

impl ArrivalTrace {
    /// Generates a trace: arrival stamps from the process (inhomogeneous
    /// shapes via thinning against their peak rate), one model/tenant/
    /// lifetime draw per arrival, departures merged in stamp order.
    ///
    /// # Panics
    ///
    /// Panics if the config's model pool is empty, a rate is
    /// non-positive/non-finite, or a bursty window has zero length.
    pub fn generate(process: ArrivalProcess, config: &TraceConfig, seed: u64) -> Self {
        assert!(!config.models.is_empty(), "trace needs a model pool");
        if !config.tenant_weights.is_empty() {
            assert_eq!(
                config.tenant_weights.len(),
                config.tenants as usize,
                "tenant_weights needs one entry per tenant"
            );
            assert!(
                config
                    .tenant_weights
                    .iter()
                    .all(|w| *w >= 0.0 && w.is_finite())
                    && config.tenant_weights.iter().sum::<f64>() > 0.0,
                "tenant_weights must be non-negative, finite and not all zero"
            );
        }
        assert!(
            (0.0..=1.0).contains(&config.guaranteed_share),
            "guaranteed_share must be within [0, 1]"
        );
        if config.guaranteed_share > 0.0 {
            assert!(
                config.guaranteed_min_tps > 0.0 && config.guaranteed_min_tps.is_finite(),
                "guaranteed traces need a positive, finite min_tps floor"
            );
        }
        let peak = match process {
            ArrivalProcess::Poisson { rate_per_s } => rate_per_s,
            ArrivalProcess::Bursty {
                on_rate_per_s,
                on_ms,
                off_ms,
            } => {
                assert!(on_ms > 0 && off_ms > 0, "bursty windows must be non-zero");
                on_rate_per_s
            }
            ArrivalProcess::DiurnalRamp {
                peak_rate_per_s,
                period_ms,
            } => {
                assert!(period_ms > 0, "diurnal period must be non-zero");
                peak_rate_per_s
            }
        };
        assert!(peak > 0.0 && peak.is_finite(), "rate must be positive");
        let rate_of = |t_ms: f64| -> f64 {
            match process {
                ArrivalProcess::Poisson { rate_per_s } => rate_per_s,
                ArrivalProcess::Bursty {
                    on_rate_per_s,
                    on_ms,
                    off_ms,
                } => {
                    let phase = (t_ms as u64) % (on_ms + off_ms);
                    if phase < on_ms {
                        on_rate_per_s
                    } else {
                        0.0
                    }
                }
                ArrivalProcess::DiurnalRamp {
                    peak_rate_per_s,
                    period_ms,
                } => {
                    let phase = t_ms / period_ms as f64 * std::f64::consts::TAU;
                    peak_rate_per_s * (1.0 - phase.cos()) / 2.0
                }
            }
        };

        let mut rng = StdRng::seed_from_u64(seed);
        // Inverse-CDF draw; 1-U keeps the argument strictly positive.
        fn exp(rng: &mut StdRng, mean: f64) -> f64 {
            -mean * (1.0 - rng.gen_range(0.0f64..1.0)).ln()
        }
        let mut events: Vec<(u64, u8, u64, TraceEvent)> = Vec::new();
        let mut t_ms = 0.0f64;
        let mut next_id = 1u64;
        loop {
            // Candidate stamps at the peak rate; thinning keeps each with
            // probability rate(t)/peak, yielding the inhomogeneous
            // process exactly.
            t_ms += exp(&mut rng, 1000.0 / peak);
            if t_ms >= config.horizon_ms as f64 {
                break;
            }
            let keep = rng.gen_range(0.0f64..1.0) < rate_of(t_ms) / peak;
            // Every candidate draws its job attributes even when thinned
            // away, so traces of nested shapes stay aligned per seed.
            let model = config.models[rng.gen_range(0..config.models.len())];
            let tenant = if config.tenant_weights.is_empty() {
                rng.gen_range(0..config.tenants.max(1))
            } else {
                // Weighted draw: one uniform over the total mass, walked
                // through the cumulative weights.
                let total: f64 = config.tenant_weights.iter().sum();
                let mut u = rng.gen_range(0.0f64..total);
                let mut chosen = config.tenants - 1;
                for (t, w) in config.tenant_weights.iter().enumerate() {
                    if u < *w {
                        chosen = t as u32;
                        break;
                    }
                    u -= w;
                }
                chosen
            };
            let lifetime = exp(&mut rng, config.mean_lifetime_ms);
            // The SLO draw only happens when the share is positive, so a
            // zero share keeps the RNG stream (and every pre-SLO trace)
            // bit-for-bit unchanged — same contract as tenant_weights.
            let slo = if config.guaranteed_share > 0.0
                && rng.gen_range(0.0f64..1.0) < config.guaranteed_share
            {
                SloClass::Guaranteed {
                    min_tps: config.guaranteed_min_tps,
                }
            } else {
                SloClass::BestEffort
            };
            if !keep {
                continue;
            }
            let at_ms = t_ms as u64;
            let id = next_id;
            next_id += 1;
            events.push((
                at_ms,
                1,
                id,
                TraceEvent {
                    at_ms,
                    event: JobEvent::Arrive(JobSpec {
                        id,
                        model,
                        tenant,
                        slo,
                    }),
                },
            ));
            let depart_ms = t_ms + lifetime.max(1.0);
            if depart_ms < config.horizon_ms as f64 {
                let at_ms = depart_ms as u64;
                events.push((
                    at_ms,
                    0,
                    id,
                    TraceEvent {
                        at_ms,
                        event: JobEvent::Depart { job_id: id },
                    },
                ));
            }
        }
        // Stamp order; departures (rank 0) before arrivals at equal
        // stamps; job id breaks remaining ties deterministically.
        events.sort_by_key(|(at, rank, id, _)| (*at, *rank, *id));
        Self {
            events: events.into_iter().map(|(_, _, _, e)| e).collect(),
        }
    }

    /// Wraps an explicit event list (benches and tests hand-build
    /// deterministic scenarios — e.g. a mass skewed departure — that no
    /// stochastic generator can pin down), sorted with the same rule as
    /// [`ArrivalTrace::generate`]: stamp order, departures before
    /// arrivals at equal stamps, job id breaking remaining ties.
    pub fn from_events(events: Vec<TraceEvent>) -> Self {
        let mut keyed: Vec<(u64, u8, u64, TraceEvent)> = events
            .into_iter()
            .map(|e| {
                let (rank, id) = match e.event {
                    JobEvent::Depart { job_id } => (0u8, job_id),
                    JobEvent::Arrive(job) => (1, job.id),
                };
                (e.at_ms, rank, id, e)
            })
            .collect();
        keyed.sort_by_key(|(at, rank, id, _)| (*at, *rank, *id));
        Self {
            events: keyed.into_iter().map(|(_, _, _, e)| e).collect(),
        }
    }

    /// The events, in replay order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Total event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of arrival events.
    pub fn arrivals(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.event, JobEvent::Arrive(_)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrency_stays_within_board_limits() {
        // The paper's board dies above 5 concurrent DNNs (§V-A); no
        // preset may exceed that.
        for s in Scenario::ALL {
            let k = s.concurrency();
            assert!((2..=5).contains(&k), "{s}: {k} DNNs");
        }
    }

    #[test]
    fn surveillance_hub_is_the_heaviest() {
        let load = |s: Scenario| -> u64 {
            s.models()
                .iter()
                .map(|id| crate::zoo::build(*id).total_flops())
                .sum()
        };
        for s in [Scenario::DigitalAssistant, Scenario::ObjectDetection] {
            assert!(load(Scenario::SurveillanceHub) > load(s), "{s}");
        }
    }

    #[test]
    fn display_names_are_kebab_case() {
        for s in Scenario::ALL {
            let n = s.to_string();
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
        }
    }

    fn processes() -> [ArrivalProcess; 3] {
        [
            ArrivalProcess::Poisson { rate_per_s: 1.0 },
            ArrivalProcess::Bursty {
                on_rate_per_s: 2.0,
                on_ms: 5_000,
                off_ms: 10_000,
            },
            ArrivalProcess::DiurnalRamp {
                peak_rate_per_s: 2.0,
                period_ms: 60_000,
            },
        ]
    }

    #[test]
    fn traces_are_deterministic_per_seed_and_differ_across_seeds() {
        let cfg = TraceConfig::default();
        for p in processes() {
            let a = ArrivalTrace::generate(p, &cfg, 7);
            let b = ArrivalTrace::generate(p, &cfg, 7);
            assert_eq!(a, b, "{p}: same seed must replay bit-for-bit");
            let c = ArrivalTrace::generate(p, &cfg, 8);
            assert_ne!(a, c, "{p}: different seed, different trace");
            assert!(a.arrivals() > 5, "{p}: {} arrivals", a.arrivals());
        }
    }

    #[test]
    fn traces_are_sorted_and_internally_consistent() {
        let cfg = TraceConfig::default();
        for p in processes() {
            let trace = ArrivalTrace::generate(p, &cfg, 13);
            let mut live: Vec<u64> = Vec::new();
            let mut seen: Vec<u64> = Vec::new();
            let mut last = 0u64;
            for e in trace.events() {
                assert!(e.at_ms >= last, "{p}: out of order");
                assert!(e.at_ms < cfg.horizon_ms);
                last = e.at_ms;
                match e.event {
                    JobEvent::Arrive(job) => {
                        assert!(!seen.contains(&job.id), "{p}: duplicate id");
                        assert!(cfg.models.contains(&job.model));
                        assert!(job.tenant < cfg.tenants);
                        seen.push(job.id);
                        live.push(job.id);
                    }
                    JobEvent::Depart { job_id } => {
                        let pos = live
                            .iter()
                            .position(|id| *id == job_id)
                            .unwrap_or_else(|| panic!("{p}: depart before arrive"));
                        live.remove(pos);
                    }
                }
            }
        }
    }

    #[test]
    fn fleet_scripts_are_deterministic_and_never_kill_the_last_board() {
        let cfg = FleetScriptConfig {
            horizon_ms: 600_000,
            initial_boards: 2,
            join_profiles: 2,
            mean_fail_interval_ms: 40_000.0,
            mean_drain_interval_ms: 90_000.0,
            mean_join_interval_ms: 70_000.0,
            ..FleetScriptConfig::default()
        };
        let a = FleetScript::generate(&cfg, 9);
        assert_eq!(a, FleetScript::generate(&cfg, 9), "same seed, same script");
        assert_ne!(a, FleetScript::generate(&cfg, 10));
        assert!(!a.is_empty(), "a 10-minute script should produce events");
        // Replay the alive set: every fail/drain targets an alive board,
        // at least one board always survives, joins append fresh indices.
        let mut alive: Vec<usize> = (0..cfg.initial_boards).collect();
        let mut next_index = cfg.initial_boards;
        let mut last = 0u64;
        let (mut fails, mut joins) = (0usize, 0usize);
        for e in a.events() {
            assert!(e.at_ms >= last && e.at_ms < cfg.horizon_ms);
            last = e.at_ms;
            match e.event {
                FleetEvent::BoardFail { board } | FleetEvent::BoardDrain { board } => {
                    let pos = alive
                        .iter()
                        .position(|b| *b == board)
                        .expect("alive target");
                    alive.remove(pos);
                    assert!(!alive.is_empty(), "last board was killed");
                    if matches!(e.event, FleetEvent::BoardFail { .. }) {
                        fails += 1;
                    }
                }
                FleetEvent::BoardJoin { profile } => {
                    assert!(profile < cfg.join_profiles);
                    alive.push(next_index);
                    next_index += 1;
                    joins += 1;
                }
                FleetEvent::BoardDegrade { .. } | FleetEvent::BoardRecover { .. } => {
                    panic!("chaos classes are disabled in this config")
                }
            }
        }
        assert!(fails > 0, "mean 40s over 10 min should fail some board");
        assert!(joins > 0);
    }

    #[test]
    fn fleet_script_disabled_classes_never_fire() {
        let cfg = FleetScriptConfig {
            mean_fail_interval_ms: 0.0,
            mean_drain_interval_ms: 0.0,
            mean_join_interval_ms: 0.0,
            ..FleetScriptConfig::default()
        };
        assert!(FleetScript::generate(&cfg, 3).is_empty());
        assert!(FleetScript::none().is_empty());
    }

    #[test]
    fn chaos_scripts_compose_all_five_classes_deterministically() {
        let cfg = FleetScriptConfig {
            horizon_ms: 600_000,
            initial_boards: 3,
            join_profiles: 2,
            mean_fail_interval_ms: 80_000.0,
            mean_drain_interval_ms: 120_000.0,
            mean_join_interval_ms: 90_000.0,
            mean_degrade_interval_ms: 30_000.0,
            mean_recover_interval_ms: 40_000.0,
            degrade_profiles: 2,
            mean_flap_interval_ms: 100_000.0,
            flap_down_ms: 3_000,
        };
        let a = FleetScript::generate(&cfg, 31);
        assert_eq!(a, FleetScript::generate(&cfg, 31), "bit-for-bit replay");
        assert_ne!(a, FleetScript::generate(&cfg, 32));

        // Replay the alive + degraded sets: degrades target alive
        // non-degraded boards, recovers target degraded ones, nothing
        // touches a dead board, the last board always survives.
        let mut alive: Vec<usize> = (0..cfg.initial_boards).collect();
        let mut degraded: Vec<usize> = Vec::new();
        let mut next_index = cfg.initial_boards;
        let mut last = 0u64;
        let (mut degrades, mut recovers, mut fails, mut joins) = (0, 0, 0, 0);
        for e in a.events() {
            assert!(e.at_ms >= last && e.at_ms < cfg.horizon_ms);
            last = e.at_ms;
            match e.event {
                FleetEvent::BoardFail { board } | FleetEvent::BoardDrain { board } => {
                    let pos = alive.iter().position(|b| *b == board).expect("alive");
                    alive.remove(pos);
                    degraded.retain(|b| *b != board);
                    assert!(!alive.is_empty(), "last board was killed");
                    if matches!(e.event, FleetEvent::BoardFail { .. }) {
                        fails += 1;
                    }
                }
                FleetEvent::BoardJoin { profile } => {
                    assert!(profile < cfg.join_profiles);
                    alive.push(next_index);
                    next_index += 1;
                    joins += 1;
                }
                FleetEvent::BoardDegrade { board, profile } => {
                    assert!(alive.contains(&board), "degrade of a dead board");
                    assert!(!degraded.contains(&board), "double degrade");
                    assert!(profile < cfg.degrade_profiles);
                    degraded.push(board);
                    degrades += 1;
                }
                FleetEvent::BoardRecover { board } => {
                    let pos = degraded.iter().position(|b| *b == board);
                    degraded.remove(pos.expect("recover targets a degraded board"));
                    recovers += 1;
                }
            }
        }
        assert!(degrades > 0, "mean 30s over 10 min should degrade");
        assert!(recovers > 0, "degraded boards should recover");
        assert!(fails > 0, "fail + flap classes should fire");
        assert!(joins > 0, "joins + flap rejoins should fire");
    }

    #[test]
    fn flap_sequences_rejoin_after_the_configured_downtime() {
        let cfg = FleetScriptConfig {
            horizon_ms: 400_000,
            initial_boards: 3,
            mean_fail_interval_ms: 0.0,
            mean_join_interval_ms: 0.0,
            mean_flap_interval_ms: 60_000.0,
            flap_down_ms: 5_000,
            ..FleetScriptConfig::default()
        };
        let script = FleetScript::generate(&cfg, 17);
        let fails: Vec<u64> = script
            .events()
            .iter()
            .filter(|e| matches!(e.event, FleetEvent::BoardFail { .. }))
            .map(|e| e.at_ms)
            .collect();
        let joins: Vec<u64> = script
            .events()
            .iter()
            .filter(|e| matches!(e.event, FleetEvent::BoardJoin { .. }))
            .map(|e| e.at_ms)
            .collect();
        assert!(!fails.is_empty(), "flaps should fire");
        // Every join is a flap rejoin: exactly down_ms after some fail
        // (modulo the u64 stamp truncation of fractional fail stamps).
        for j in &joins {
            assert!(
                fails
                    .iter()
                    .any(|f| (*j as i64 - (*f + cfg.flap_down_ms) as i64).abs() <= 1),
                "join at {j} is not a flap rejoin"
            );
        }
        // Rejoins for fails whose downtime ends inside the horizon.
        let expected = fails
            .iter()
            .filter(|f| ((**f + cfg.flap_down_ms) as f64) < cfg.horizon_ms as f64 - 1.0)
            .count();
        assert!(
            joins.len() >= expected.saturating_sub(1),
            "{} joins for {expected} in-horizon flap rejoins",
            joins.len()
        );
    }

    #[test]
    fn fleet_script_new_sorts_by_stamp() {
        let s = FleetScript::new(vec![
            FleetTraceEvent {
                at_ms: 500,
                event: FleetEvent::BoardJoin { profile: 0 },
            },
            FleetTraceEvent {
                at_ms: 100,
                event: FleetEvent::BoardFail { board: 1 },
            },
        ]);
        assert_eq!(s.events()[0].at_ms, 100);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn tenant_weights_skew_the_tenant_draw_and_empty_weights_change_nothing() {
        let uniform = TraceConfig {
            horizon_ms: 120_000,
            ..TraceConfig::default()
        };
        let before =
            ArrivalTrace::generate(ArrivalProcess::Poisson { rate_per_s: 1.0 }, &uniform, 17);
        // Empty weights: the exact trace the field's introduction must
        // not disturb.
        let unchanged = ArrivalTrace::generate(
            ArrivalProcess::Poisson { rate_per_s: 1.0 },
            &TraceConfig {
                tenant_weights: Vec::new(),
                ..uniform.clone()
            },
            17,
        );
        assert_eq!(before, unchanged);

        let skewed_cfg = TraceConfig {
            tenant_weights: vec![7.0, 1.0, 1.0, 1.0],
            ..uniform
        };
        let skewed =
            ArrivalTrace::generate(ArrivalProcess::Poisson { rate_per_s: 1.0 }, &skewed_cfg, 17);
        let mut counts = [0usize; 4];
        for e in skewed.events() {
            if let JobEvent::Arrive(job) = e.event {
                counts[job.tenant as usize] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        assert!(total > 50);
        // Tenant 0 should take roughly 70%; a loose 50% bar is ~4 sigma.
        assert!(
            counts[0] * 2 > total,
            "tenant 0 got {} of {total} arrivals",
            counts[0]
        );
        assert!(counts[1..].iter().all(|c| *c < counts[0]));
    }

    #[test]
    fn guaranteed_share_skews_slo_classes_and_zero_share_changes_nothing() {
        let plain = TraceConfig {
            horizon_ms: 120_000,
            ..TraceConfig::default()
        };
        let before =
            ArrivalTrace::generate(ArrivalProcess::Poisson { rate_per_s: 1.0 }, &plain, 23);
        // share = 0.0 draws nothing from the RNG: pre-SLO traces replay
        // bit-for-bit.
        let unchanged = ArrivalTrace::generate(
            ArrivalProcess::Poisson { rate_per_s: 1.0 },
            &TraceConfig {
                guaranteed_share: 0.0,
                ..plain.clone()
            },
            23,
        );
        assert_eq!(before, unchanged);
        for e in before.events() {
            if let JobEvent::Arrive(job) = e.event {
                assert_eq!(job.slo, SloClass::BestEffort);
            }
        }

        let mixed_cfg = TraceConfig {
            guaranteed_share: 0.3,
            guaranteed_min_tps: 4.0,
            ..plain
        };
        let mixed =
            ArrivalTrace::generate(ArrivalProcess::Poisson { rate_per_s: 1.0 }, &mixed_cfg, 23);
        let (mut gtd, mut be) = (0usize, 0usize);
        for e in mixed.events() {
            if let JobEvent::Arrive(job) = e.event {
                match job.slo {
                    SloClass::Guaranteed { min_tps } => {
                        assert_eq!(min_tps, 4.0);
                        gtd += 1;
                    }
                    SloClass::BestEffort => be += 1,
                }
            }
        }
        let total = gtd + be;
        assert!(total > 50);
        // 30% expected; a 10–60% band is far beyond 4 sigma either way.
        assert!(
            gtd * 10 > total && gtd * 10 < total * 6,
            "{gtd} guaranteed of {total}"
        );
        assert!(be > gtd, "best-effort should stay the majority class");
    }

    #[test]
    fn poisson_arrival_count_tracks_the_rate() {
        let cfg = TraceConfig {
            horizon_ms: 200_000,
            ..TraceConfig::default()
        };
        let trace = ArrivalTrace::generate(ArrivalProcess::Poisson { rate_per_s: 1.0 }, &cfg, 21);
        // 200 expected; a ±35% band is ~5 sigma.
        assert!(
            (130..=270).contains(&trace.arrivals()),
            "got {}",
            trace.arrivals()
        );
    }

    #[test]
    fn bursty_off_windows_are_silent() {
        let cfg = TraceConfig {
            horizon_ms: 100_000,
            ..TraceConfig::default()
        };
        let (on_ms, off_ms) = (4_000u64, 6_000u64);
        let trace = ArrivalTrace::generate(
            ArrivalProcess::Bursty {
                on_rate_per_s: 3.0,
                on_ms,
                off_ms,
            },
            &cfg,
            3,
        );
        for e in trace.events() {
            if let JobEvent::Arrive(_) = e.event {
                assert!(
                    e.at_ms % (on_ms + off_ms) < on_ms,
                    "arrival at {} falls in an OFF window",
                    e.at_ms
                );
            }
        }
        assert!(trace.arrivals() > 10);
    }

    #[test]
    fn diurnal_ramp_concentrates_arrivals_mid_period() {
        let period = 100_000u64;
        let cfg = TraceConfig {
            horizon_ms: period,
            ..TraceConfig::default()
        };
        let trace = ArrivalTrace::generate(
            ArrivalProcess::DiurnalRamp {
                peak_rate_per_s: 3.0,
                period_ms: period,
            },
            &cfg,
            5,
        );
        let mid = trace
            .events()
            .iter()
            .filter(|e| {
                matches!(e.event, JobEvent::Arrive(_))
                    && (period / 4..3 * period / 4).contains(&e.at_ms)
            })
            .count();
        let edges = trace.arrivals() - mid;
        assert!(
            mid > 2 * edges,
            "ramp should peak mid-period: {mid} mid vs {edges} edge arrivals"
        );
    }
}
