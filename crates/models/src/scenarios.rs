//! Named multi-DNN application scenarios.
//!
//! The paper's introduction motivates multi-DNN workloads with concrete
//! application classes — "digital assistants, object detection, and
//! virtual/augmented reality services" — each of which runs several
//! networks concurrently. These presets give examples and downstream
//! users realistic named mixes instead of raw model lists.

use crate::zoo::ModelId;
use std::fmt;

/// A named concurrent-DNN application bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Scenario {
    /// Voice/visual digital assistant: a light always-on keyword/vision
    /// path plus a heavier understanding model.
    DigitalAssistant,
    /// Camera object-detection stack: detector backbone + classifier +
    /// lightweight tracker features.
    ObjectDetection,
    /// AR/VR headset: scene understanding, hand/pose path and a HUD
    /// classifier running together.
    AugmentedReality,
    /// Smart-camera surveillance hub: maximum concurrent load the board
    /// sustains (5 DNNs, §V-A's upper limit).
    SurveillanceHub,
}

impl Scenario {
    /// All presets.
    pub const ALL: [Scenario; 4] = [
        Scenario::DigitalAssistant,
        Scenario::ObjectDetection,
        Scenario::AugmentedReality,
        Scenario::SurveillanceHub,
    ];

    /// The zoo models this scenario runs concurrently.
    ///
    /// Compositions follow the paper's workload construction: mixes of
    /// 2–5 networks spanning light (MobileNet/SqueezeNet) and heavy
    /// (VGG/ResNet/Inception) ends of the dataset.
    pub fn models(self) -> Vec<ModelId> {
        match self {
            Scenario::DigitalAssistant => vec![ModelId::MobileNet, ModelId::ResNet34],
            Scenario::ObjectDetection => {
                vec![ModelId::ResNet50, ModelId::SqueezeNet, ModelId::MobileNet]
            }
            Scenario::AugmentedReality => vec![
                ModelId::InceptionV3,
                ModelId::MobileNet,
                ModelId::SqueezeNet,
                ModelId::ResNet34,
            ],
            Scenario::SurveillanceHub => vec![
                ModelId::Vgg16,
                ModelId::ResNet50,
                ModelId::MobileNet,
                ModelId::SqueezeNet,
                ModelId::AlexNet,
            ],
        }
    }

    /// Number of concurrent DNNs.
    pub fn concurrency(self) -> usize {
        self.models().len()
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Scenario::DigitalAssistant => "digital-assistant",
            Scenario::ObjectDetection => "object-detection",
            Scenario::AugmentedReality => "augmented-reality",
            Scenario::SurveillanceHub => "surveillance-hub",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrency_stays_within_board_limits() {
        // The paper's board dies above 5 concurrent DNNs (§V-A); no
        // preset may exceed that.
        for s in Scenario::ALL {
            let k = s.concurrency();
            assert!((2..=5).contains(&k), "{s}: {k} DNNs");
        }
    }

    #[test]
    fn surveillance_hub_is_the_heaviest() {
        let load = |s: Scenario| -> u64 {
            s.models()
                .iter()
                .map(|id| crate::zoo::build(*id).total_flops())
                .sum()
        };
        for s in [Scenario::DigitalAssistant, Scenario::ObjectDetection] {
            assert!(load(Scenario::SurveillanceHub) > load(s), "{s}");
        }
    }

    #[test]
    fn display_names_are_kebab_case() {
        for s in Scenario::ALL {
            let n = s.to_string();
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
        }
    }
}
