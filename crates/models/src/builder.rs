//! Ergonomic construction of DNN descriptions.
//!
//! [`DnnModelBuilder`] tracks the activation shape as layers are appended
//! and derives each kernel's FLOPs and memory traffic from standard
//! formulas, so zoo definitions (and user-supplied custom networks, one of
//! the paper's extensibility claims) stay declarative.

use crate::graph::{DnnModel, ModelError};
use crate::kernel::{Kernel, KernelClass};
use crate::layer::{Layer, LayerKind};
use crate::shapes::TensorShape;

/// Builder for [`DnnModel`] chains.
///
/// ```
/// use omniboost_models::{DnnModelBuilder, TensorShape};
///
/// let model = DnnModelBuilder::new(TensorShape::new(3, 224, 224))
///     .conv("conv1", 64, 7, 2, 3)
///     .max_pool("pool1", 3, 2, 1)
///     .global_avg_pool("gap")
///     .fc("fc", 1000)
///     .build("tiny")?;
/// assert_eq!(model.num_layers(), 4);
/// # Ok::<(), omniboost_models::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DnnModelBuilder {
    input_shape: TensorShape,
    shape: TensorShape,
    layers: Vec<Layer>,
}

impl DnnModelBuilder {
    /// Starts a model whose input activation has the given shape.
    pub fn new(input_shape: TensorShape) -> Self {
        Self {
            input_shape,
            shape: input_shape,
            layers: Vec::new(),
        }
    }

    /// Current activation shape (output of the last appended layer).
    pub fn current_shape(&self) -> TensorShape {
        self.shape
    }

    /// Appends a pre-constructed layer, updating the tracked shape.
    #[must_use]
    pub fn layer(mut self, layer: Layer) -> Self {
        self.shape = layer.output_shape();
        self.layers.push(layer);
        self
    }

    /// Dense convolution with a fused activation. `kernel == 1` is priced
    /// as a pointwise convolution.
    #[must_use]
    pub fn conv(self, name: &str, out_ch: usize, kernel: usize, stride: usize, pad: usize) -> Self {
        let kind = if kernel == 1 {
            LayerKind::PointwiseConv
        } else {
            LayerKind::Conv
        };
        self.conv_inner(name, kind, out_ch, kernel, stride, pad)
    }

    fn conv_inner(
        mut self,
        name: &str,
        kind: LayerKind,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        let inp = self.shape;
        let out = TensorShape::new(
            out_ch,
            TensorShape::conv_out_extent(inp.height, kernel, stride, pad),
            TensorShape::conv_out_extent(inp.width, kernel, stride, pad),
        );
        let class = if kernel == 1 {
            KernelClass::PointwiseConv
        } else {
            KernelClass::DirectConv
        };
        let conv = conv_kernel(name, class, inp, out, kernel, inp.channels);
        let act = activation_kernel(&format!("{name}.act"), out);
        self.shape = out;
        self.layers
            .push(Layer::new(name, kind, vec![conv, act], out));
        self
    }

    /// Depthwise convolution (one filter per input channel) + activation.
    #[must_use]
    pub fn dw_conv(mut self, name: &str, kernel: usize, stride: usize, pad: usize) -> Self {
        let inp = self.shape;
        let out = TensorShape::new(
            inp.channels,
            TensorShape::conv_out_extent(inp.height, kernel, stride, pad),
            TensorShape::conv_out_extent(inp.width, kernel, stride, pad),
        );
        // Depthwise: each output element needs k*k MACs (single channel).
        let flops = 2 * kernel * kernel * out.elements();
        let weights = kernel * kernel * inp.channels * 4;
        let dw = Kernel::new(name, KernelClass::DepthwiseConv)
            .with_flops(flops as u64)
            .with_bytes(inp.bytes() as u64, out.bytes() as u64, weights as u64);
        let act = activation_kernel(&format!("{name}.act"), out);
        self.shape = out;
        self.layers.push(Layer::new(
            name,
            LayerKind::DepthwiseConv,
            vec![dw, act],
            out,
        ));
        self
    }

    /// Max-pooling layer.
    #[must_use]
    pub fn max_pool(self, name: &str, kernel: usize, stride: usize, pad: usize) -> Self {
        self.pool_inner(name, kernel, stride, pad)
    }

    /// Average-pooling layer (priced identically to max pooling).
    #[must_use]
    pub fn avg_pool(self, name: &str, kernel: usize, stride: usize, pad: usize) -> Self {
        self.pool_inner(name, kernel, stride, pad)
    }

    fn pool_inner(mut self, name: &str, kernel: usize, stride: usize, pad: usize) -> Self {
        let inp = self.shape;
        let out = TensorShape::new(
            inp.channels,
            TensorShape::conv_out_extent(inp.height, kernel, stride, pad),
            TensorShape::conv_out_extent(inp.width, kernel, stride, pad),
        );
        let k = pool_kernel(name, inp, out, kernel);
        self.shape = out;
        self.layers
            .push(Layer::new(name, LayerKind::Pool, vec![k], out));
        self
    }

    /// Global average pooling down to `C×1×1`.
    #[must_use]
    pub fn global_avg_pool(mut self, name: &str) -> Self {
        let inp = self.shape;
        let out = TensorShape::flat(inp.channels);
        let k = Kernel::new(name, KernelClass::Pool)
            .with_flops(inp.elements() as u64)
            .with_bytes(inp.bytes() as u64, out.bytes() as u64, 0);
        self.shape = out;
        self.layers
            .push(Layer::new(name, LayerKind::Pool, vec![k], out));
        self
    }

    /// Fully-connected layer (+ fused activation).
    #[must_use]
    pub fn fc(mut self, name: &str, out_features: usize) -> Self {
        let inp = self.shape;
        let out = TensorShape::flat(out_features);
        let in_features = inp.elements();
        let flops = 2 * in_features * out_features;
        let weights = in_features * out_features * 4;
        let gemm = Kernel::new(name, KernelClass::Gemm)
            .with_flops(flops as u64)
            .with_bytes(inp.bytes() as u64, out.bytes() as u64, weights as u64);
        let act = activation_kernel(&format!("{name}.act"), out);
        self.shape = out;
        self.layers.push(Layer::new(
            name,
            LayerKind::FullyConnected,
            vec![gemm, act],
            out,
        ));
        self
    }

    /// Local response normalization (AlexNet-era), folded into the
    /// preceding conv layer's schedulable unit would hide a real kernel, so
    /// it is priced as part of the conv layer that calls this helper.
    #[must_use]
    pub fn with_lrn(mut self) -> Self {
        let last = self.layers.last_mut().expect("lrn follows a layer");
        let out = last.output_shape();
        let norm = Kernel::new(format!("{}.lrn", last.name()), KernelClass::Norm)
            .with_flops((out.elements() * 5) as u64)
            .with_bytes(out.bytes() as u64, out.bytes() as u64, 0);
        let mut kernels = last.kernels().to_vec();
        kernels.push(norm);
        *last = Layer::new(last.name().to_owned(), last.kind(), kernels, out);
        self
    }

    /// SqueezeNet fire module, modelled as **two** schedulable layers
    /// (squeeze, then expand+concat), matching the paper's layer counting
    /// for the motivational example.
    #[must_use]
    pub fn fire(mut self, name: &str, squeeze_ch: usize, expand_ch: usize) -> Self {
        let inp = self.shape;
        // Squeeze: 1x1 conv to squeeze_ch.
        let sq_out = TensorShape::new(squeeze_ch, inp.height, inp.width);
        let squeeze = conv_kernel(
            &format!("{name}.squeeze"),
            KernelClass::PointwiseConv,
            inp,
            sq_out,
            1,
            inp.channels,
        );
        let sq_act = activation_kernel(&format!("{name}.squeeze.act"), sq_out);
        self.layers.push(Layer::new(
            format!("{name}.squeeze"),
            LayerKind::Fire,
            vec![squeeze, sq_act],
            sq_out,
        ));

        // Expand: parallel 1x1 and 3x3 convs, concatenated.
        let half = TensorShape::new(expand_ch / 2, sq_out.height, sq_out.width);
        let out = TensorShape::new(expand_ch, sq_out.height, sq_out.width);
        let e1 = conv_kernel(
            &format!("{name}.expand1x1"),
            KernelClass::PointwiseConv,
            sq_out,
            half,
            1,
            sq_out.channels,
        );
        let e3 = conv_kernel(
            &format!("{name}.expand3x3"),
            KernelClass::DirectConv,
            sq_out,
            half,
            3,
            sq_out.channels,
        );
        let cat = Kernel::new(format!("{name}.concat"), KernelClass::Concat).with_bytes(
            out.bytes() as u64,
            out.bytes() as u64,
            0,
        );
        let act = activation_kernel(&format!("{name}.expand.act"), out);
        self.shape = out;
        self.layers.push(Layer::new(
            format!("{name}.expand"),
            LayerKind::Fire,
            vec![e1, e3, cat, act],
            out,
        ));
        self
    }

    /// ResNet basic residual block (3×3 conv → 3×3 conv → add), one
    /// schedulable layer. A projection shortcut is added when the stride or
    /// channel count changes.
    #[must_use]
    pub fn residual_basic(mut self, name: &str, out_ch: usize, stride: usize) -> Self {
        let inp = self.shape;
        let mid = TensorShape::new(
            out_ch,
            TensorShape::conv_out_extent(inp.height, 3, stride, 1),
            TensorShape::conv_out_extent(inp.width, 3, stride, 1),
        );
        let out = mid;
        let mut kernels = vec![
            conv_kernel(
                &format!("{name}.conv1"),
                KernelClass::DirectConv,
                inp,
                mid,
                3,
                inp.channels,
            ),
            activation_kernel(&format!("{name}.act1"), mid),
            conv_kernel(
                &format!("{name}.conv2"),
                KernelClass::DirectConv,
                mid,
                out,
                3,
                mid.channels,
            ),
        ];
        if stride != 1 || inp.channels != out_ch {
            kernels.push(conv_kernel(
                &format!("{name}.proj"),
                KernelClass::PointwiseConv,
                inp,
                out,
                1,
                inp.channels,
            ));
        }
        kernels.push(eltwise_add_kernel(&format!("{name}.add"), out));
        kernels.push(activation_kernel(&format!("{name}.act2"), out));
        self.shape = out;
        self.layers
            .push(Layer::new(name, LayerKind::Residual, kernels, out));
        self
    }

    /// ResNet bottleneck residual block (1×1 → 3×3 → 1×1 + add), one
    /// schedulable layer.
    #[must_use]
    pub fn residual_bottleneck(
        mut self,
        name: &str,
        mid_ch: usize,
        out_ch: usize,
        stride: usize,
    ) -> Self {
        let inp = self.shape;
        let reduce = TensorShape::new(mid_ch, inp.height, inp.width);
        let spatial = TensorShape::new(
            mid_ch,
            TensorShape::conv_out_extent(inp.height, 3, stride, 1),
            TensorShape::conv_out_extent(inp.width, 3, stride, 1),
        );
        let out = TensorShape::new(out_ch, spatial.height, spatial.width);
        let mut kernels = vec![
            conv_kernel(
                &format!("{name}.reduce"),
                KernelClass::PointwiseConv,
                inp,
                reduce,
                1,
                inp.channels,
            ),
            activation_kernel(&format!("{name}.act1"), reduce),
            conv_kernel(
                &format!("{name}.conv3x3"),
                KernelClass::DirectConv,
                reduce,
                spatial,
                3,
                reduce.channels,
            ),
            activation_kernel(&format!("{name}.act2"), spatial),
            conv_kernel(
                &format!("{name}.expand"),
                KernelClass::PointwiseConv,
                spatial,
                out,
                1,
                spatial.channels,
            ),
        ];
        if stride != 1 || inp.channels != out_ch {
            kernels.push(conv_kernel(
                &format!("{name}.proj"),
                KernelClass::PointwiseConv,
                inp,
                out,
                1,
                inp.channels,
            ));
        }
        kernels.push(eltwise_add_kernel(&format!("{name}.add"), out));
        kernels.push(activation_kernel(&format!("{name}.act3"), out));
        self.shape = out;
        self.layers
            .push(Layer::new(name, LayerKind::Residual, kernels, out));
        self
    }

    /// Generic inception block: parallel convolution branches whose outputs
    /// are concatenated. Each branch is a chain of `(out_ch, kernel)` convs
    /// applied to the block input; the block output stacks the branch
    /// channels at (possibly strided) spatial resolution.
    #[must_use]
    pub fn inception(mut self, name: &str, branches: &[&[(usize, usize)]], stride: usize) -> Self {
        let inp = self.shape;
        let out_h = TensorShape::conv_out_extent(inp.height, 3, stride, 1);
        let out_w = TensorShape::conv_out_extent(inp.width, 3, stride, 1);
        let mut kernels = Vec::new();
        let mut total_ch = 0usize;
        for (bi, branch) in branches.iter().enumerate() {
            let mut cur = inp;
            for (ci, (out_ch, k)) in branch.iter().enumerate() {
                let is_last = ci == branch.len() - 1;
                let (h, w) = if is_last {
                    (out_h, out_w)
                } else {
                    (cur.height, cur.width)
                };
                let nxt = TensorShape::new(*out_ch, h, w);
                let class = if *k == 1 {
                    KernelClass::PointwiseConv
                } else {
                    KernelClass::DirectConv
                };
                // Inception factorizes k>=7 windows into 1×k + k×1 pairs;
                // price them as such (2k MACs/element instead of k²).
                let kern = if *k >= 7 {
                    factorized_conv_kernel(&format!("{name}.b{bi}.c{ci}"), cur, nxt, *k)
                } else {
                    conv_kernel(
                        &format!("{name}.b{bi}.c{ci}"),
                        class,
                        cur,
                        nxt,
                        *k,
                        cur.channels,
                    )
                };
                kernels.push(kern);
                cur = nxt;
            }
            total_ch += cur.channels;
        }
        let out = TensorShape::new(total_ch, out_h, out_w);
        kernels.push(
            Kernel::new(format!("{name}.concat"), KernelClass::Concat).with_bytes(
                out.bytes() as u64,
                out.bytes() as u64,
                0,
            ),
        );
        kernels.push(activation_kernel(&format!("{name}.act"), out));
        self.shape = out;
        self.layers
            .push(Layer::new(name, LayerKind::Inception, kernels, out));
        self
    }

    /// Appends a softmax classifier kernel to the last layer.
    #[must_use]
    pub fn with_softmax(mut self) -> Self {
        let last = self.layers.last_mut().expect("softmax follows a layer");
        let out = last.output_shape();
        let sm = Kernel::new(format!("{}.softmax", last.name()), KernelClass::Softmax)
            .with_flops((out.elements() * 3) as u64)
            .with_bytes(out.bytes() as u64, out.bytes() as u64, 0);
        let mut kernels = last.kernels().to_vec();
        kernels.push(sm);
        *last = Layer::new(last.name().to_owned(), last.kind(), kernels, out);
        self
    }

    /// Finalizes the model.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] from [`DnnModel::new`] (empty chain or
    /// duplicate layer names).
    pub fn build(self, name: impl Into<String>) -> Result<DnnModel, ModelError> {
        DnnModel::new(name, self.input_shape, self.layers)
    }
}

fn conv_kernel(
    name: &str,
    class: KernelClass,
    inp: TensorShape,
    out: TensorShape,
    kernel: usize,
    in_ch: usize,
) -> Kernel {
    let flops = 2 * kernel * kernel * in_ch * out.elements();
    let weights = kernel * kernel * in_ch * out.channels * 4;
    Kernel::new(name, class)
        .with_flops(flops as u64)
        .with_bytes(inp.bytes() as u64, out.bytes() as u64, weights as u64)
}

/// A 1×k-then-k×1 factorized convolution pair, priced as one kernel.
fn factorized_conv_kernel(name: &str, inp: TensorShape, out: TensorShape, k: usize) -> Kernel {
    let flops = 2 * (2 * k) * inp.channels * out.elements();
    let weights = 2 * k * inp.channels * out.channels * 4;
    Kernel::new(name, KernelClass::DirectConv)
        .with_flops(flops as u64)
        .with_bytes(inp.bytes() as u64, out.bytes() as u64, weights as u64)
}

fn activation_kernel(name: &str, shape: TensorShape) -> Kernel {
    Kernel::new(name, KernelClass::Activation)
        .with_flops(shape.elements() as u64)
        .with_bytes(shape.bytes() as u64, shape.bytes() as u64, 0)
}

fn pool_kernel(name: &str, inp: TensorShape, out: TensorShape, kernel: usize) -> Kernel {
    Kernel::new(name, KernelClass::Pool)
        .with_flops((kernel * kernel * out.elements()) as u64)
        .with_bytes(inp.bytes() as u64, out.bytes() as u64, 0)
}

fn eltwise_add_kernel(name: &str, shape: TensorShape) -> Kernel {
    Kernel::new(name, KernelClass::EltwiseAdd)
        .with_flops(shape.elements() as u64)
        .with_bytes((2 * shape.bytes()) as u64, shape.bytes() as u64, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shapes_propagate() {
        let b = DnnModelBuilder::new(TensorShape::new(3, 224, 224))
            .conv("c1", 64, 7, 2, 3)
            .max_pool("p1", 3, 2, 1);
        assert_eq!(b.current_shape(), TensorShape::new(64, 56, 56));
    }

    #[test]
    fn conv_flops_match_formula() {
        let m = DnnModelBuilder::new(TensorShape::new(3, 224, 224))
            .conv("c1", 64, 7, 2, 3)
            .build("m")
            .unwrap();
        // 2 * 7*7 * 3 * (64*112*112) MACs + activation elements.
        let conv_flops = 2u64 * 49 * 3 * (64 * 112 * 112);
        let act_flops = 64 * 112 * 112;
        assert_eq!(m.total_flops(), conv_flops + act_flops);
    }

    #[test]
    fn fire_produces_two_layers() {
        let m = DnnModelBuilder::new(TensorShape::new(96, 55, 55))
            .fire("fire2", 16, 128)
            .build("m")
            .unwrap();
        assert_eq!(m.num_layers(), 2);
        assert_eq!(m.layers()[1].output_shape().channels, 128);
    }

    #[test]
    fn residual_block_adds_projection_on_stride() {
        let strided = DnnModelBuilder::new(TensorShape::new(64, 56, 56))
            .residual_basic("r", 128, 2)
            .build("m")
            .unwrap();
        let plain = DnnModelBuilder::new(TensorShape::new(64, 56, 56))
            .residual_basic("r", 64, 1)
            .build("m")
            .unwrap();
        assert_eq!(
            strided.layers()[0].kernels().len(),
            plain.layers()[0].kernels().len() + 1
        );
    }

    #[test]
    fn inception_concatenates_branch_channels() {
        let m = DnnModelBuilder::new(TensorShape::new(192, 28, 28))
            .inception("mix", &[&[(64, 1)], &[(96, 1), (128, 3)], &[(32, 5)]], 1)
            .build("m")
            .unwrap();
        assert_eq!(m.layers()[0].output_shape().channels, 64 + 128 + 32);
    }

    #[test]
    fn fc_weights_dominate_bytes() {
        let m = DnnModelBuilder::new(TensorShape::new(256, 6, 6))
            .fc("fc6", 4096)
            .build("m")
            .unwrap();
        let w = m.total_weight_bytes();
        assert_eq!(w, (256 * 6 * 6 * 4096 * 4) as u64);
    }
}
