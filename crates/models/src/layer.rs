//! Layers: the unit of OmniBoost's partitioning decisions.
//!
//! The scheduler assigns every *layer* of every DNN to one computing
//! component; consecutive layers on different components form pipeline
//! stages with an inter-stage activation transfer. A layer owns one or
//! more [`Kernel`]s (a fire module, for instance, runs a squeeze conv, two
//! expand convs and a concat).

use crate::kernel::{Kernel, KernelClass};
use crate::shapes::TensorShape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Coarse structural kind of a layer, used for reporting and by baseline
/// schedulers that special-case convolutional layers (e.g. CNNDroid-style
/// "convs to the GPU" policies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum LayerKind {
    /// Dense convolution (+ folded activation).
    Conv,
    /// Depthwise convolution stage of a depthwise-separable block.
    DepthwiseConv,
    /// Pointwise (1×1) convolution stage of a depthwise-separable block.
    PointwiseConv,
    /// Max or average pooling.
    Pool,
    /// Fully-connected layer.
    FullyConnected,
    /// SqueezeNet fire-module half (squeeze or expand).
    Fire,
    /// Residual block (two or three convs + shortcut add).
    Residual,
    /// Inception block (parallel branches + concat).
    Inception,
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LayerKind::Conv => "conv",
            LayerKind::DepthwiseConv => "dwconv",
            LayerKind::PointwiseConv => "pwconv",
            LayerKind::Pool => "pool",
            LayerKind::FullyConnected => "fc",
            LayerKind::Fire => "fire",
            LayerKind::Residual => "residual",
            LayerKind::Inception => "inception",
        };
        f.write_str(s)
    }
}

impl LayerKind {
    /// Whether this layer kind is convolution-dominated (used by
    /// conv-to-GPU heuristics).
    pub fn is_convolutional(self) -> bool {
        matches!(
            self,
            LayerKind::Conv
                | LayerKind::DepthwiseConv
                | LayerKind::PointwiseConv
                | LayerKind::Fire
                | LayerKind::Residual
                | LayerKind::Inception
        )
    }
}

/// One schedulable layer of a DNN.
///
/// ```
/// use omniboost_models::{Kernel, KernelClass, Layer, LayerKind, TensorShape};
///
/// let layer = Layer::new(
///     "conv1",
///     LayerKind::Conv,
///     vec![Kernel::new("conv1", KernelClass::DirectConv).with_flops(1_000_000)],
///     TensorShape::new(64, 112, 112),
/// );
/// assert_eq!(layer.flops(), 1_000_000);
/// assert_eq!(layer.output_bytes(), 64 * 112 * 112 * 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    name: String,
    kind: LayerKind,
    kernels: Vec<Kernel>,
    output_shape: TensorShape,
}

impl Layer {
    /// Creates a layer from its kernels and output activation shape.
    ///
    /// # Panics
    ///
    /// Panics if `kernels` is empty — a layer with nothing to execute is a
    /// model-construction bug.
    pub fn new(
        name: impl Into<String>,
        kind: LayerKind,
        kernels: Vec<Kernel>,
        output_shape: TensorShape,
    ) -> Self {
        assert!(
            !kernels.is_empty(),
            "layer must contain at least one kernel"
        );
        Self {
            name: name.into(),
            kind,
            kernels,
            output_shape,
        }
    }

    /// Layer name (unique within its model).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Structural kind.
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// The kernels executed by this layer.
    pub fn kernels(&self) -> &[Kernel] {
        &self.kernels
    }

    /// Shape of the activation this layer produces.
    pub fn output_shape(&self) -> TensorShape {
        self.output_shape
    }

    /// Bytes that must cross the memory bus if the *next* layer runs on a
    /// different device (the pipeline-stage transfer cost).
    pub fn output_bytes(&self) -> usize {
        self.output_shape.bytes()
    }

    /// Total floating-point operations across all kernels (Eq. 1 numerator).
    pub fn flops(&self) -> u64 {
        self.kernels.iter().map(Kernel::flops).sum()
    }

    /// Total memory traffic across all kernels.
    pub fn total_bytes(&self) -> u64 {
        self.kernels.iter().map(Kernel::total_bytes).sum()
    }

    /// Total weight bytes (contributes to a device's resident working set).
    pub fn weight_bytes(&self) -> u64 {
        self.kernels.iter().map(Kernel::bytes_weights).sum()
    }

    /// Whether any kernel belongs to the given class.
    pub fn uses_class(&self, class: KernelClass) -> bool {
        self.kernels.iter().any(|k| k.class() == class)
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {} kernel(s), {:.1} MFLOP -> {}",
            self.name,
            self.kind,
            self.kernels.len(),
            self.flops() as f64 / 1e6,
            self.output_shape
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_layer() -> Layer {
        Layer::new(
            "fire2",
            LayerKind::Fire,
            vec![
                Kernel::new("squeeze", KernelClass::PointwiseConv)
                    .with_flops(100)
                    .with_bytes(10, 10, 5),
                Kernel::new("expand", KernelClass::DirectConv)
                    .with_flops(300)
                    .with_bytes(20, 40, 15),
                Kernel::new("concat", KernelClass::Concat).with_bytes(40, 40, 0),
            ],
            TensorShape::new(128, 56, 56),
        )
    }

    #[test]
    fn aggregates_sum_over_kernels() {
        let l = sample_layer();
        assert_eq!(l.flops(), 400);
        assert_eq!(l.total_bytes(), 180);
        assert_eq!(l.weight_bytes(), 20);
    }

    #[test]
    fn uses_class_detects_members() {
        let l = sample_layer();
        assert!(l.uses_class(KernelClass::Concat));
        assert!(!l.uses_class(KernelClass::Gemm));
    }

    #[test]
    #[should_panic(expected = "at least one kernel")]
    fn empty_kernel_list_panics() {
        let _ = Layer::new("bad", LayerKind::Conv, vec![], TensorShape::flat(1));
    }

    #[test]
    fn conv_kinds_are_convolutional() {
        assert!(LayerKind::Conv.is_convolutional());
        assert!(LayerKind::Inception.is_convolutional());
        assert!(!LayerKind::Pool.is_convolutional());
        assert!(!LayerKind::FullyConnected.is_convolutional());
    }
}
