//! MobileNet v1 (Howard et al., 2017) — 27 schedulable layers:
//! the initial strided convolution plus 13 depthwise-separable blocks,
//! each contributing a depthwise layer and a pointwise layer (the natural
//! ARM-CL kernel split, and the granularity the paper's motivational
//! example uses, e.g. "first 10 layers on big CPU").
//!
//! The trailing global-average-pool + classifier is folded into the last
//! pointwise layer so the 27-layer convention of §II holds.

use crate::builder::DnnModelBuilder;
use crate::graph::DnnModel;
use crate::kernel::{Kernel, KernelClass};
use crate::layer::Layer;
use crate::shapes::TensorShape;

/// (stride, output channels) of the 13 depthwise-separable blocks.
const BLOCKS: [(usize, usize); 13] = [
    (1, 64),
    (2, 128),
    (1, 128),
    (2, 256),
    (1, 256),
    (2, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (2, 1024),
    (1, 1024),
];

/// Builds MobileNet v1 (width multiplier 1.0, 224×224).
pub fn build() -> DnnModel {
    let mut b = DnnModelBuilder::new(TensorShape::new(3, 224, 224)).conv("conv1", 32, 3, 2, 1);
    for (i, (stride, out_ch)) in BLOCKS.iter().enumerate() {
        b = b.dw_conv(&format!("dw{}", i + 2), 3, *stride, 1).conv(
            &format!("pw{}", i + 2),
            *out_ch,
            1,
            1,
            0,
        );
    }
    // Fold gap+fc into the final pointwise layer to keep the 27-layer
    // counting convention: append the pool and gemm kernels to pw14.
    let mut model = b.build("mobilenet").expect("mobilenet definition is valid");
    let last_idx = model.num_layers() - 1;
    let last = model.layer(last_idx).clone();
    let feat = last.output_shape();
    let out = TensorShape::flat(1000);
    let mut kernels = last.kernels().to_vec();
    kernels.push(
        Kernel::new("gap", KernelClass::Pool)
            .with_flops(feat.elements() as u64)
            .with_bytes(feat.bytes() as u64, (feat.channels * 4) as u64, 0),
    );
    kernels.push(
        Kernel::new("fc", KernelClass::Gemm)
            .with_flops((2 * feat.channels * 1000) as u64)
            .with_bytes(
                (feat.channels * 4) as u64,
                out.bytes() as u64,
                (feat.channels * 1000 * 4) as u64,
            ),
    );
    kernels.push(
        Kernel::new("softmax", KernelClass::Softmax)
            .with_flops(3_000)
            .with_bytes(out.bytes() as u64, out.bytes() as u64, 0),
    );
    let mut layers = model.layers().to_vec();
    layers[last_idx] = Layer::new(last.name().to_owned(), last.kind(), kernels, out);
    model = DnnModel::new("mobilenet", model.input_shape(), layers)
        .expect("mobilenet rebuild is valid");
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    #[test]
    fn has_27_layers() {
        assert_eq!(build().num_layers(), 27);
    }

    #[test]
    fn alternates_depthwise_and_pointwise() {
        let m = build();
        for (i, l) in m.layers().iter().enumerate().skip(1) {
            let expect = if i % 2 == 1 {
                LayerKind::DepthwiseConv
            } else {
                LayerKind::PointwiseConv
            };
            assert_eq!(l.kind(), expect, "layer {i} ({})", l.name());
        }
    }

    #[test]
    fn classifier_folded_into_last_layer() {
        let m = build();
        let last = m.layers().last().unwrap();
        assert!(last.uses_class(KernelClass::Gemm));
        assert!(last.uses_class(KernelClass::Softmax));
        assert_eq!(last.output_shape().elements(), 1000);
    }

    #[test]
    fn depthwise_layers_are_cheap_relative_to_pointwise() {
        let m = build();
        // dw2 (layer 1) vs pw2 (layer 2): pointwise has ~Cout/9 × more MACs.
        let dw = m.layer(1).flops();
        let pw = m.layer(2).flops();
        assert!(pw > dw, "pointwise should dominate: dw={dw} pw={pw}");
    }
}
