//! Inception-v3 and Inception-v4 (Szegedy et al.). Inception blocks are
//! indivisible schedulable units (parallel branches concatenate inside the
//! block). Branch structures are simplified to their dominant convolutions
//! but keep faithful channel widths and resolutions, so FLOP totals land
//! in the published ballpark (~11.4 GFLOP for v3, ~24.5 GFLOP for v4,
//! counting MACs×2).
//!
//! Layer counts: v3 = 20 (7 stem + 11 blocks + gap + fc),
//! v4 = 25 (7 stem + 16 blocks + gap + fc).

use crate::builder::DnnModelBuilder;
use crate::graph::DnnModel;
use crate::shapes::TensorShape;

/// Builds Inception-v3 at its canonical 299×299 input.
pub fn build_v3() -> DnnModel {
    let b = DnnModelBuilder::new(TensorShape::new(3, 299, 299))
        // Stem: 7 layers.
        .conv("conv1", 32, 3, 2, 0)
        .conv("conv2", 32, 3, 1, 0)
        .conv("conv3", 64, 3, 1, 1)
        .max_pool("pool1", 3, 2, 0)
        .conv("conv4", 80, 1, 1, 0)
        .conv("conv5", 192, 3, 1, 0)
        .max_pool("pool2", 3, 2, 0)
        // 3 × inception-A at 35×35 (output 256/288 ch).
        .inception(
            "mixed5b",
            &[
                &[(64, 1)],
                &[(48, 1), (64, 5)],
                &[(64, 1), (96, 3), (96, 3)],
                &[(32, 1)],
            ],
            1,
        )
        .inception(
            "mixed5c",
            &[
                &[(64, 1)],
                &[(48, 1), (64, 5)],
                &[(64, 1), (96, 3), (96, 3)],
                &[(64, 1)],
            ],
            1,
        )
        .inception(
            "mixed5d",
            &[
                &[(64, 1)],
                &[(48, 1), (64, 5)],
                &[(64, 1), (96, 3), (96, 3)],
                &[(64, 1)],
            ],
            1,
        )
        // Grid reduction to 17×17.
        .inception(
            "mixed6a",
            &[&[(384, 3)], &[(64, 1), (96, 3), (96, 3)], &[(288, 3)]],
            2,
        )
        // 4 × inception-B at 17×17 (factorized 7×7 ≈ two 7-wide convs,
        // priced as 7×7 splits: use (c,7) pairs).
        .inception(
            "mixed6b",
            &[
                &[(192, 1)],
                &[(128, 1), (128, 7), (192, 7)],
                &[(128, 1), (128, 7), (192, 7)],
                &[(192, 1)],
            ],
            1,
        )
        .inception(
            "mixed6c",
            &[
                &[(192, 1)],
                &[(160, 1), (160, 7), (192, 7)],
                &[(160, 1), (160, 7), (192, 7)],
                &[(192, 1)],
            ],
            1,
        )
        .inception(
            "mixed6d",
            &[
                &[(192, 1)],
                &[(160, 1), (160, 7), (192, 7)],
                &[(160, 1), (160, 7), (192, 7)],
                &[(192, 1)],
            ],
            1,
        )
        .inception(
            "mixed6e",
            &[
                &[(192, 1)],
                &[(192, 1), (192, 7), (192, 7)],
                &[(192, 1), (192, 7), (192, 7)],
                &[(192, 1)],
            ],
            1,
        )
        // Grid reduction to 8×8.
        .inception(
            "mixed7a",
            &[
                &[(192, 1), (320, 3)],
                &[(192, 1), (192, 7), (192, 3)],
                &[(768, 3)],
            ],
            2,
        )
        // 2 × inception-C at 8×8.
        .inception(
            "mixed7b",
            &[
                &[(320, 1)],
                &[(384, 1), (768, 3)],
                &[(448, 1), (384, 3), (768, 3)],
                &[(192, 1)],
            ],
            1,
        )
        .inception(
            "mixed7c",
            &[
                &[(320, 1)],
                &[(384, 1), (768, 3)],
                &[(448, 1), (384, 3), (768, 3)],
                &[(192, 1)],
            ],
            1,
        )
        .global_avg_pool("gap")
        .fc("fc", 1000)
        .with_softmax();
    b.build("inception-v3")
        .expect("inception-v3 definition is valid")
}

/// Builds Inception-v4 at 299×299.
pub fn build_v4() -> DnnModel {
    let b = DnnModelBuilder::new(TensorShape::new(3, 299, 299))
        // Stem: 7 layers (the v4 stem's branched tails are folded into
        // two inception-style stem blocks).
        .conv("conv1", 32, 3, 2, 0)
        .conv("conv2", 32, 3, 1, 0)
        .conv("conv3", 64, 3, 1, 1)
        .inception("stem1", &[&[(96, 3)], &[(64, 3)]], 2)
        .inception(
            "stem2",
            &[&[(64, 1), (96, 3)], &[(64, 1), (64, 7), (96, 3)]],
            1,
        )
        .inception("stem3", &[&[(192, 3)], &[(96, 3)]], 2)
        .conv("conv4", 384, 1, 1, 0)
        // 4 × inception-A at 35×35.
        .inception(
            "a1",
            &[
                &[(96, 1)],
                &[(64, 1), (96, 3)],
                &[(64, 1), (96, 3), (96, 3)],
                &[(96, 1)],
            ],
            1,
        )
        .inception(
            "a2",
            &[
                &[(96, 1)],
                &[(64, 1), (96, 3)],
                &[(64, 1), (96, 3), (96, 3)],
                &[(96, 1)],
            ],
            1,
        )
        .inception(
            "a3",
            &[
                &[(96, 1)],
                &[(64, 1), (96, 3)],
                &[(64, 1), (96, 3), (96, 3)],
                &[(96, 1)],
            ],
            1,
        )
        .inception(
            "a4",
            &[
                &[(96, 1)],
                &[(64, 1), (96, 3)],
                &[(64, 1), (96, 3), (96, 3)],
                &[(96, 1)],
            ],
            1,
        )
        // Reduction-A to 17×17.
        .inception(
            "red_a",
            &[&[(384, 3)], &[(192, 1), (224, 3), (256, 3)], &[(384, 3)]],
            2,
        )
        // 7 × inception-B at 17×17.
        .inception(
            "b1",
            &[
                &[(384, 1)],
                &[(192, 1), (224, 7), (256, 7)],
                &[(192, 1), (224, 7), (256, 7)],
                &[(128, 1)],
            ],
            1,
        )
        .inception(
            "b2",
            &[
                &[(384, 1)],
                &[(192, 1), (224, 7), (256, 7)],
                &[(192, 1), (224, 7), (256, 7)],
                &[(128, 1)],
            ],
            1,
        )
        .inception(
            "b3",
            &[
                &[(384, 1)],
                &[(192, 1), (224, 7), (256, 7)],
                &[(192, 1), (224, 7), (256, 7)],
                &[(128, 1)],
            ],
            1,
        )
        .inception(
            "b4",
            &[
                &[(384, 1)],
                &[(192, 1), (224, 7), (256, 7)],
                &[(192, 1), (224, 7), (256, 7)],
                &[(128, 1)],
            ],
            1,
        )
        .inception(
            "b5",
            &[
                &[(384, 1)],
                &[(192, 1), (224, 7), (256, 7)],
                &[(192, 1), (224, 7), (256, 7)],
                &[(128, 1)],
            ],
            1,
        )
        .inception(
            "b6",
            &[
                &[(384, 1)],
                &[(192, 1), (224, 7), (256, 7)],
                &[(192, 1), (224, 7), (256, 7)],
                &[(128, 1)],
            ],
            1,
        )
        .inception(
            "b7",
            &[
                &[(384, 1)],
                &[(192, 1), (224, 7), (256, 7)],
                &[(192, 1), (224, 7), (256, 7)],
                &[(128, 1)],
            ],
            1,
        )
        // Reduction-B to 8×8.
        .inception(
            "red_b",
            &[
                &[(192, 1), (192, 3)],
                &[(256, 1), (320, 7), (320, 3)],
                &[(1024, 3)],
            ],
            2,
        )
        // 3 × inception-C at 8×8.
        .inception(
            "c1",
            &[
                &[(256, 1)],
                &[(384, 1), (512, 3)],
                &[(384, 1), (512, 3), (512, 3)],
                &[(256, 1)],
            ],
            1,
        )
        .inception(
            "c2",
            &[
                &[(256, 1)],
                &[(384, 1), (512, 3)],
                &[(384, 1), (512, 3), (512, 3)],
                &[(256, 1)],
            ],
            1,
        )
        .inception(
            "c3",
            &[
                &[(256, 1)],
                &[(384, 1), (512, 3)],
                &[(384, 1), (512, 3), (512, 3)],
                &[(256, 1)],
            ],
            1,
        )
        .global_avg_pool("gap")
        .fc("fc", 1000)
        .with_softmax();
    b.build("inception-v4")
        .expect("inception-v4 definition is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_counts() {
        assert_eq!(build_v3().num_layers(), 20);
        assert_eq!(build_v4().num_layers(), 25);
    }

    #[test]
    fn v4_heavier_than_v3() {
        assert!(build_v4().total_flops() > build_v3().total_flops());
    }

    #[test]
    fn v3_flops_in_published_ballpark() {
        // Published Inception-v3: ~11.4 GFLOP at 299x299.
        let f = build_v3().total_flops() as f64 / 1e9;
        assert!((6.0..20.0).contains(&f), "Inception-v3 GFLOP = {f}");
    }
}
