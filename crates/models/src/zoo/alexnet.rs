//! AlexNet (Krizhevsky et al., 2012) — 11 schedulable layers:
//! 5 convolutions, 3 poolings, 3 fully-connected layers.

use crate::builder::DnnModelBuilder;
use crate::graph::DnnModel;
use crate::shapes::TensorShape;

/// Builds AlexNet at its canonical 227×227 input resolution.
pub fn build() -> DnnModel {
    DnnModelBuilder::new(TensorShape::new(3, 227, 227))
        .conv("conv1", 96, 11, 4, 0)
        .with_lrn()
        .max_pool("pool1", 3, 2, 0)
        .conv("conv2", 256, 5, 1, 2)
        .with_lrn()
        .max_pool("pool2", 3, 2, 0)
        .conv("conv3", 384, 3, 1, 1)
        .conv("conv4", 384, 3, 1, 1)
        .conv("conv5", 256, 3, 1, 1)
        .max_pool("pool5", 3, 2, 0)
        .fc("fc6", 4096)
        .fc("fc7", 4096)
        .fc("fc8", 1000)
        .with_softmax()
        .build("alexnet")
        .expect("alexnet definition is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_11_layers() {
        assert_eq!(build().num_layers(), 11);
    }

    #[test]
    fn classifier_outputs_1000_classes() {
        let m = build();
        assert_eq!(m.layers().last().unwrap().output_shape().elements(), 1000);
    }

    #[test]
    fn conv_spatial_sizes_match_reference() {
        let m = build();
        // conv1: (227-11)/4+1 = 55.
        assert_eq!(m.layer(0).output_shape(), TensorShape::new(96, 55, 55));
        // pool1: (55-3)/2+1 = 27.
        assert_eq!(m.layer(1).output_shape(), TensorShape::new(96, 27, 27));
        // pool5 output is 256x6x6, the classic fc6 input.
        assert_eq!(m.layer(7).output_shape(), TensorShape::new(256, 6, 6));
    }

    #[test]
    fn weights_dominated_by_fc_layers() {
        let m = build();
        let fc: u64 = m.layers()[8..].iter().map(|l| l.weight_bytes()).sum();
        assert!(fc * 10 > m.total_weight_bytes() * 9, "fc >= 90% of weights");
    }
}
