//! The VGG family (Simonyan & Zisserman, 2014): configurations B (VGG-13),
//! D (VGG-16) and E (VGG-19). All convolutions are 3×3 stride 1 pad 1;
//! five 2×2 max-pools halve the resolution; three FC layers classify.
//!
//! Layer counts: VGG-13 = 18, VGG-16 = 21, VGG-19 = 24
//! (convs + pools + fcs).

use crate::builder::DnnModelBuilder;
use crate::graph::DnnModel;
use crate::shapes::TensorShape;

/// Convs per stage for each configuration.
fn stage_convs(depth: usize) -> [usize; 5] {
    match depth {
        13 => [2, 2, 2, 2, 2],
        16 => [2, 2, 3, 3, 3],
        19 => [2, 2, 4, 4, 4],
        _ => panic!("unsupported VGG depth {depth} (expected 13, 16 or 19)"),
    }
}

/// Builds VGG-`depth` for `depth ∈ {13, 16, 19}`.
///
/// # Panics
///
/// Panics on an unsupported depth.
pub fn build(depth: usize) -> DnnModel {
    let stages = stage_convs(depth);
    let channels = [64usize, 128, 256, 512, 512];
    let mut b = DnnModelBuilder::new(TensorShape::new(3, 224, 224));
    for (si, (&n, &ch)) in stages.iter().zip(channels.iter()).enumerate() {
        for ci in 0..n {
            b = b.conv(&format!("conv{}_{}", si + 1, ci + 1), ch, 3, 1, 1);
        }
        b = b.max_pool(&format!("pool{}", si + 1), 2, 2, 0);
    }
    b.fc("fc6", 4096)
        .fc("fc7", 4096)
        .fc("fc8", 1000)
        .with_softmax()
        .build(format!("vgg{depth}"))
        .expect("vgg definition is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_counts() {
        assert_eq!(build(13).num_layers(), 18);
        assert_eq!(build(16).num_layers(), 21);
        assert_eq!(build(19).num_layers(), 24);
    }

    #[test]
    #[should_panic(expected = "unsupported VGG depth")]
    fn rejects_unknown_depth() {
        let _ = build(11);
    }

    #[test]
    fn final_feature_map_is_512x7x7() {
        let m = build(16);
        // Layer before fc6 is pool5.
        let pool5 = m.layer(m.num_layers() - 4);
        assert_eq!(pool5.output_shape(), TensorShape::new(512, 7, 7));
    }

    #[test]
    fn depth_increases_flops_monotonically() {
        assert!(build(19).total_flops() > build(16).total_flops());
        assert!(build(16).total_flops() > build(13).total_flops());
    }
}
