//! SqueezeNet v1.0 (Iandola et al., 2016) — 22 schedulable layers:
//! conv1, maxpool1, eight fire modules (each split into squeeze and
//! expand layers, matching the paper's "first 18 layers … the last one"
//! granularity), two more maxpools, conv10 and the global average pool.

use crate::builder::DnnModelBuilder;
use crate::graph::DnnModel;
use crate::shapes::TensorShape;

/// Builds SqueezeNet v1.0 at 224×224.
pub fn build() -> DnnModel {
    DnnModelBuilder::new(TensorShape::new(3, 224, 224))
        .conv("conv1", 96, 7, 2, 2)
        .max_pool("pool1", 3, 2, 0)
        .fire("fire2", 16, 128)
        .fire("fire3", 16, 128)
        .fire("fire4", 32, 256)
        .max_pool("pool4", 3, 2, 0)
        .fire("fire5", 32, 256)
        .fire("fire6", 48, 384)
        .fire("fire7", 48, 384)
        .fire("fire8", 64, 512)
        .max_pool("pool8", 3, 2, 0)
        .fire("fire9", 64, 512)
        .conv("conv10", 1000, 1, 1, 0)
        .global_avg_pool("gap")
        .with_softmax()
        .build("squeezenet")
        .expect("squeezenet definition is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_22_layers() {
        assert_eq!(build().num_layers(), 22);
    }

    #[test]
    fn small_model_size() {
        // SqueezeNet's selling point: ~1.2M params ≈ 5 MB of f32 weights.
        let mb = build().total_weight_bytes() as f64 / (1024.0 * 1024.0);
        assert!(mb < 10.0, "SqueezeNet weights = {mb:.1} MiB");
    }

    #[test]
    fn classifier_outputs_1000_classes() {
        let m = build();
        assert_eq!(m.layers().last().unwrap().output_shape().elements(), 1000);
    }

    #[test]
    fn fire9_expand_has_512_channels() {
        let m = build();
        let fire9 = m
            .layers()
            .iter()
            .find(|l| l.name() == "fire9.expand")
            .unwrap();
        assert_eq!(fire9.output_shape().channels, 512);
    }
}
