//! The eleven networks of the paper's evaluation dataset (§V):
//! AlexNet, MobileNet, ResNet-34/50/101, VGG-13/16/19, SqueezeNet and
//! Inception-v3/v4.
//!
//! Layer-count conventions follow the paper's motivational example (§II),
//! which schedules 84 layers across AlexNet + MobileNet + VGG-19 +
//! SqueezeNet: pooling layers are schedulable units, depthwise-separable
//! blocks contribute two layers (depthwise + pointwise), fire modules
//! contribute two layers (squeeze + expand), and residual/inception blocks
//! are single indivisible units.

mod alexnet;
mod inception;
mod mobilenet;
mod resnet;
mod squeezenet;
mod vgg;

use crate::graph::DnnModel;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Identifier of a zoo network.
///
/// ```
/// use omniboost_models::{zoo, ModelId};
///
/// for id in ModelId::ALL {
///     let m = zoo::build(id);
///     assert_eq!(m.name(), id.to_string());
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ModelId {
    /// AlexNet (Krizhevsky et al.), 11 layers.
    AlexNet,
    /// MobileNet v1 (Howard et al.), 27 layers.
    MobileNet,
    /// ResNet-34 (He et al.), 20 layers.
    ResNet34,
    /// ResNet-50, 20 layers (bottleneck blocks).
    ResNet50,
    /// ResNet-101, 37 layers.
    ResNet101,
    /// VGG-13 (Simonyan & Zisserman), 18 layers.
    Vgg13,
    /// VGG-16, 21 layers.
    Vgg16,
    /// VGG-19, 24 layers.
    Vgg19,
    /// SqueezeNet v1.0 (Iandola et al.), 22 layers.
    SqueezeNet,
    /// Inception-v3 (Szegedy et al.), 20 layers.
    InceptionV3,
    /// Inception-v4, 25 layers.
    InceptionV4,
}

impl ModelId {
    /// The full evaluation dataset, in the order the paper lists it.
    pub const ALL: [ModelId; 11] = [
        ModelId::AlexNet,
        ModelId::MobileNet,
        ModelId::ResNet34,
        ModelId::ResNet50,
        ModelId::ResNet101,
        ModelId::Vgg13,
        ModelId::Vgg16,
        ModelId::Vgg19,
        ModelId::SqueezeNet,
        ModelId::InceptionV3,
        ModelId::InceptionV4,
    ];

    /// Stable index within [`ModelId::ALL`] (row index in the distributed
    /// embeddings tensor).
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|m| *m == self)
            .expect("id listed in ALL")
    }

    /// The "lightweight" models the paper singles out in the mix-5
    /// discussion of Fig. 5a (AlexNet, VGG-13, MobileNet).
    pub const LIGHTWEIGHT: [ModelId; 3] = [ModelId::AlexNet, ModelId::Vgg13, ModelId::MobileNet];
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ModelId::AlexNet => "alexnet",
            ModelId::MobileNet => "mobilenet",
            ModelId::ResNet34 => "resnet34",
            ModelId::ResNet50 => "resnet50",
            ModelId::ResNet101 => "resnet101",
            ModelId::Vgg13 => "vgg13",
            ModelId::Vgg16 => "vgg16",
            ModelId::Vgg19 => "vgg19",
            ModelId::SqueezeNet => "squeezenet",
            ModelId::InceptionV3 => "inception-v3",
            ModelId::InceptionV4 => "inception-v4",
        };
        f.write_str(s)
    }
}

/// Error returned when parsing an unknown model name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModelIdError(String);

impl fmt::Display for ParseModelIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown model name `{}`", self.0)
    }
}

impl std::error::Error for ParseModelIdError {}

impl FromStr for ModelId {
    type Err = ParseModelIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ModelId::ALL
            .iter()
            .find(|id| id.to_string() == s)
            .copied()
            .ok_or_else(|| ParseModelIdError(s.to_owned()))
    }
}

/// Builds the layer/kernel description of a zoo network.
pub fn build(id: ModelId) -> DnnModel {
    match id {
        ModelId::AlexNet => alexnet::build(),
        ModelId::MobileNet => mobilenet::build(),
        ModelId::ResNet34 => resnet::build_34(),
        ModelId::ResNet50 => resnet::build_50(),
        ModelId::ResNet101 => resnet::build_101(),
        ModelId::Vgg13 => vgg::build(13),
        ModelId::Vgg16 => vgg::build(16),
        ModelId::Vgg19 => vgg::build(19),
        ModelId::SqueezeNet => squeezenet::build(),
        ModelId::InceptionV3 => inception::build_v3(),
        ModelId::InceptionV4 => inception::build_v4(),
    }
}

/// Builds every zoo network.
pub fn build_all() -> Vec<DnnModel> {
    ModelId::ALL.iter().map(|id| build(*id)).collect()
}

/// Per-inference FLOPs of a zoo network, from a table built once per
/// process — hot paths that only need a job's weight class (evacuation
/// ordering, load projection over thousands of jobs) must not rebuild
/// the full layer graph per query.
pub fn total_flops(id: ModelId) -> u64 {
    static TABLE: std::sync::OnceLock<[u64; ModelId::ALL.len()]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u64; ModelId::ALL.len()];
        for id in ModelId::ALL {
            table[id.index()] = build(id).total_flops();
        }
        table
    })[id.index()]
}

/// The maximum layer count across the zoo — the width `L` of the
/// distributed embeddings tensor before zero-padding.
pub fn max_layers() -> usize {
    ModelId::ALL
        .iter()
        .map(|id| build(*id).num_layers())
        .max()
        .expect("zoo is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_counts_match_conventions() {
        let expect = [
            (ModelId::AlexNet, 11),
            (ModelId::MobileNet, 27),
            (ModelId::ResNet34, 20),
            (ModelId::ResNet50, 20),
            (ModelId::ResNet101, 37),
            (ModelId::Vgg13, 18),
            (ModelId::Vgg16, 21),
            (ModelId::Vgg19, 24),
            (ModelId::SqueezeNet, 22),
            (ModelId::InceptionV3, 20),
            (ModelId::InceptionV4, 25),
        ];
        for (id, n) in expect {
            assert_eq!(build(id).num_layers(), n, "{id}");
        }
    }

    #[test]
    fn max_layers_is_resnet101() {
        assert_eq!(max_layers(), 37);
    }

    #[test]
    fn flops_table_matches_built_models() {
        for id in ModelId::ALL {
            assert_eq!(total_flops(id), build(id).total_flops(), "{id}");
        }
    }

    #[test]
    fn model_ids_parse_roundtrip() {
        for id in ModelId::ALL {
            let parsed: ModelId = id.to_string().parse().unwrap();
            assert_eq!(parsed, id);
        }
        assert!("vgg99".parse::<ModelId>().is_err());
    }

    #[test]
    fn flops_ordering_is_plausible() {
        // VGG-19 is the heaviest classic; MobileNet & SqueezeNet are light.
        let f = |id| build(id).total_flops();
        assert!(f(ModelId::Vgg19) > f(ModelId::Vgg16));
        assert!(f(ModelId::Vgg16) > f(ModelId::Vgg13));
        assert!(f(ModelId::Vgg13) > f(ModelId::MobileNet));
        assert!(f(ModelId::ResNet101) > f(ModelId::ResNet50));
        assert!(f(ModelId::ResNet50) > f(ModelId::MobileNet));
        assert!(f(ModelId::AlexNet) > f(ModelId::SqueezeNet));
    }

    #[test]
    fn vgg19_flops_in_published_ballpark() {
        // Published VGG-19: ~19.6 GMACs for 224x224; we count FLOPs as
        // MACs*2, so expect ~39 GFLOP.
        let f = build(ModelId::Vgg19).total_flops() as f64 / 1e9;
        assert!((30.0..50.0).contains(&f), "VGG-19 GFLOP = {f}");
    }

    #[test]
    fn mobilenet_flops_in_published_ballpark() {
        // Published MobileNet v1: ~1.1 GFLOP (569 MFLOPs MACs).
        let f = build(ModelId::MobileNet).total_flops() as f64 / 1e9;
        assert!((0.6..2.0).contains(&f), "MobileNet GFLOP = {f}");
    }

    #[test]
    fn every_model_has_unique_layer_names() {
        // DnnModel::new enforces this; building without panicking proves it.
        let _ = build_all();
    }
}
