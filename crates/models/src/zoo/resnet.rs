//! The ResNet family (He et al., 2016). Residual blocks are indivisible
//! schedulable units (their internal shortcut would make a mid-block cut
//! point semantically messy), so:
//!
//! * ResNet-34 = stem conv + pool + 16 basic blocks + gap + fc = 20 layers;
//! * ResNet-50 = stem conv + pool + 16 bottleneck blocks + gap + fc = 20;
//! * ResNet-101 = stem conv + pool + 33 bottleneck blocks + gap + fc = 37.

use crate::builder::DnnModelBuilder;
use crate::graph::DnnModel;
use crate::shapes::TensorShape;

fn stem() -> DnnModelBuilder {
    DnnModelBuilder::new(TensorShape::new(3, 224, 224))
        .conv("conv1", 64, 7, 2, 3)
        .max_pool("pool1", 3, 2, 1)
}

fn classifier(b: DnnModelBuilder, name: &str) -> DnnModel {
    b.global_avg_pool("gap")
        .fc("fc", 1000)
        .with_softmax()
        .build(name)
        .expect("resnet definition is valid")
}

/// Builds ResNet-34 (basic blocks, stage depths 3-4-6-3).
pub fn build_34() -> DnnModel {
    let depths = [3usize, 4, 6, 3];
    let channels = [64usize, 128, 256, 512];
    let mut b = stem();
    for (si, (&d, &ch)) in depths.iter().zip(channels.iter()).enumerate() {
        for bi in 0..d {
            let stride = if si > 0 && bi == 0 { 2 } else { 1 };
            b = b.residual_basic(&format!("res{}_{}", si + 2, bi + 1), ch, stride);
        }
    }
    classifier(b, "resnet34")
}

fn build_bottleneck(name: &str, depths: [usize; 4]) -> DnnModel {
    let mid = [64usize, 128, 256, 512];
    let out = [256usize, 512, 1024, 2048];
    let mut b = stem();
    for si in 0..4 {
        for bi in 0..depths[si] {
            let stride = if si > 0 && bi == 0 { 2 } else { 1 };
            b = b.residual_bottleneck(
                &format!("res{}_{}", si + 2, bi + 1),
                mid[si],
                out[si],
                stride,
            );
        }
    }
    classifier(b, name)
}

/// Builds ResNet-50 (bottleneck blocks, stage depths 3-4-6-3).
pub fn build_50() -> DnnModel {
    build_bottleneck("resnet50", [3, 4, 6, 3])
}

/// Builds ResNet-101 (bottleneck blocks, stage depths 3-4-23-3).
pub fn build_101() -> DnnModel {
    build_bottleneck("resnet101", [3, 4, 23, 3])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_counts() {
        assert_eq!(build_34().num_layers(), 20);
        assert_eq!(build_50().num_layers(), 20);
        assert_eq!(build_101().num_layers(), 37);
    }

    #[test]
    fn resnet50_flops_in_published_ballpark() {
        // Published ResNet-50: ~8.2 GFLOP (4.1 GMACs) at 224x224.
        let f = build_50().total_flops() as f64 / 1e9;
        assert!((5.0..12.0).contains(&f), "ResNet-50 GFLOP = {f}");
    }

    #[test]
    fn deeper_means_more_flops() {
        assert!(build_101().total_flops() > build_50().total_flops());
    }

    #[test]
    fn final_stage_is_2048_channels_for_bottlenecks() {
        let m = build_50();
        let gap_in = m.layer(m.num_layers() - 3).output_shape();
        assert_eq!(gap_in.channels, 2048);
        assert_eq!((gap_in.height, gap_in.width), (7, 7));
    }
}
