//! Compute kernels: the unit of the paper's performance exploration.
//!
//! OmniBoost builds its distributed embeddings tensor from *kernel-level*
//! measurements: the cost of layer `l` on device `α` is the sum of its
//! kernel costs, `B_l^α = Σ_{k∈l} b_k^α` (Eq. 1). Each [`Kernel`] therefore
//! carries the compute/memory quantities a roofline-style device model
//! needs to price it.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The computational class of a kernel.
///
/// Devices have very different relative efficiency per class (e.g. mobile
/// GPUs excel at wide direct convolutions but are comparatively poor at
/// depthwise convolutions and tiny element-wise kernels), which is what
/// makes heterogeneous layer partitioning profitable in the first place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum KernelClass {
    /// Dense 2-D convolution (im2col/GEMM or direct).
    DirectConv,
    /// Depthwise convolution (one filter per channel).
    DepthwiseConv,
    /// 1×1 (pointwise) convolution.
    PointwiseConv,
    /// Dense matrix multiply (fully-connected layers).
    Gemm,
    /// Max/average pooling window reduction.
    Pool,
    /// Element-wise activation (ReLU family).
    Activation,
    /// Normalization (LRN / batch-norm folded at inference).
    Norm,
    /// Element-wise tensor addition (residual connections).
    EltwiseAdd,
    /// Channel concatenation (fire / inception modules).
    Concat,
    /// Softmax over class logits.
    Softmax,
}

impl KernelClass {
    /// All kernel classes, in a stable order (useful for tabulating
    /// per-class device efficiencies).
    pub const ALL: [KernelClass; 10] = [
        KernelClass::DirectConv,
        KernelClass::DepthwiseConv,
        KernelClass::PointwiseConv,
        KernelClass::Gemm,
        KernelClass::Pool,
        KernelClass::Activation,
        KernelClass::Norm,
        KernelClass::EltwiseAdd,
        KernelClass::Concat,
        KernelClass::Softmax,
    ];

    /// Stable index of this class within [`KernelClass::ALL`].
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|c| *c == self)
            .expect("class listed in ALL")
    }
}

impl fmt::Display for KernelClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            KernelClass::DirectConv => "direct-conv",
            KernelClass::DepthwiseConv => "depthwise-conv",
            KernelClass::PointwiseConv => "pointwise-conv",
            KernelClass::Gemm => "gemm",
            KernelClass::Pool => "pool",
            KernelClass::Activation => "activation",
            KernelClass::Norm => "norm",
            KernelClass::EltwiseAdd => "eltwise-add",
            KernelClass::Concat => "concat",
            KernelClass::Softmax => "softmax",
        };
        f.write_str(s)
    }
}

/// A single compute kernel inside a layer.
///
/// ```
/// use omniboost_models::{Kernel, KernelClass};
///
/// let k = Kernel::new("conv3x3", KernelClass::DirectConv)
///     .with_flops(1_000_000)
///     .with_bytes(400_000, 400_000, 36_000);
/// assert_eq!(k.arithmetic_intensity(), 1_000_000.0 / 836_000.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    name: String,
    class: KernelClass,
    flops: u64,
    bytes_in: u64,
    bytes_out: u64,
    bytes_weights: u64,
}

impl Kernel {
    /// Creates a kernel with zero cost; chain `with_*` builders to fill it.
    pub fn new(name: impl Into<String>, class: KernelClass) -> Self {
        Self {
            name: name.into(),
            class,
            flops: 0,
            bytes_in: 0,
            bytes_out: 0,
            bytes_weights: 0,
        }
    }

    /// Sets the floating-point operation count.
    #[must_use]
    pub fn with_flops(mut self, flops: u64) -> Self {
        self.flops = flops;
        self
    }

    /// Sets input-activation, output-activation and weight traffic in bytes.
    #[must_use]
    pub fn with_bytes(mut self, bytes_in: u64, bytes_out: u64, bytes_weights: u64) -> Self {
        self.bytes_in = bytes_in;
        self.bytes_out = bytes_out;
        self.bytes_weights = bytes_weights;
        self
    }

    /// Kernel name (unique within its layer).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Computational class.
    pub fn class(&self) -> KernelClass {
        self.class
    }

    /// Floating-point operations executed per inference.
    pub fn flops(&self) -> u64 {
        self.flops
    }

    /// Input activation traffic in bytes.
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in
    }

    /// Output activation traffic in bytes.
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out
    }

    /// Weight traffic in bytes.
    pub fn bytes_weights(&self) -> u64 {
        self.bytes_weights
    }

    /// Total memory traffic in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_in + self.bytes_out + self.bytes_weights
    }

    /// FLOPs per byte of memory traffic — the roofline x-axis.
    ///
    /// Returns 0.0 for kernels with no memory traffic.
    pub fn arithmetic_intensity(&self) -> f64 {
        let b = self.total_bytes();
        if b == 0 {
            0.0
        } else {
            self.flops as f64 / b as f64
        }
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {:.1} MFLOP, {:.1} KiB",
            self.name,
            self.class,
            self.flops as f64 / 1e6,
            self.total_bytes() as f64 / 1024.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_index_roundtrips() {
        for (i, c) in KernelClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn arithmetic_intensity_handles_zero_bytes() {
        let k = Kernel::new("empty", KernelClass::Activation);
        assert_eq!(k.arithmetic_intensity(), 0.0);
    }

    #[test]
    fn builder_accumulates_fields() {
        let k = Kernel::new("fc", KernelClass::Gemm)
            .with_flops(2_000)
            .with_bytes(100, 200, 300);
        assert_eq!(k.flops(), 2_000);
        assert_eq!(k.total_bytes(), 600);
        assert_eq!(k.class(), KernelClass::Gemm);
    }

    #[test]
    fn display_mentions_class() {
        let k = Kernel::new("conv1", KernelClass::DirectConv).with_flops(1_500_000);
        let s = k.to_string();
        assert!(s.contains("direct-conv"), "{s}");
        assert!(s.contains("conv1"), "{s}");
    }
}
