//! Activation tensor shapes flowing between layers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Shape of an activation tensor in `(channels, height, width)` layout.
///
/// Batch size is always 1: the paper schedules latency-oriented edge
/// inference where each DNN processes a stream of single frames.
///
/// ```
/// use omniboost_models::TensorShape;
///
/// let s = TensorShape::new(64, 56, 56);
/// assert_eq!(s.elements(), 64 * 56 * 56);
/// assert_eq!(s.bytes(), s.elements() * 4); // f32 activations
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorShape {
    /// Number of channels.
    pub channels: usize,
    /// Spatial height.
    pub height: usize,
    /// Spatial width.
    pub width: usize,
}

impl TensorShape {
    /// Creates a shape from channels, height and width.
    pub const fn new(channels: usize, height: usize, width: usize) -> Self {
        Self {
            channels,
            height,
            width,
        }
    }

    /// Creates a flat (vector) shape, as produced by fully-connected layers.
    pub const fn flat(features: usize) -> Self {
        Self {
            channels: features,
            height: 1,
            width: 1,
        }
    }

    /// Total number of scalar elements.
    pub const fn elements(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Size in bytes assuming `f32` activations, the precision the paper's
    /// ARM-Compute-Library deployment uses.
    pub const fn bytes(&self) -> usize {
        self.elements() * 4
    }

    /// Output spatial extent of a convolution/pool window along one axis.
    ///
    /// Uses the standard `floor((in + 2*pad - k) / stride) + 1` rule.
    pub const fn conv_out_extent(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
        (input + 2 * pad - kernel) / stride + 1
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.channels, self.height, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_out_extent_matches_known_cases() {
        // 224x224, 7x7 stride 2 pad 3 -> 112 (ResNet stem).
        assert_eq!(TensorShape::conv_out_extent(224, 7, 2, 3), 112);
        // 224x224, 3x3 stride 1 pad 1 -> 224 (VGG conv).
        assert_eq!(TensorShape::conv_out_extent(224, 3, 1, 1), 224);
        // 56x56, 3x3 stride 2 pad 1 -> 28 (downsample).
        assert_eq!(TensorShape::conv_out_extent(56, 3, 2, 1), 28);
    }

    #[test]
    fn bytes_assume_f32() {
        assert_eq!(TensorShape::flat(1000).bytes(), 4000);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(TensorShape::new(3, 224, 224).to_string(), "3x224x224");
    }
}
