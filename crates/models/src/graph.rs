//! Whole-model descriptions: an ordered sequence of schedulable layers.

use crate::layer::Layer;
use crate::shapes::TensorShape;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error produced when assembling an invalid model description.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// The model has no layers.
    Empty,
    /// Two layers share a name.
    DuplicateLayer(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Empty => write!(f, "model has no layers"),
            ModelError::DuplicateLayer(name) => {
                write!(f, "duplicate layer name `{name}`")
            }
        }
    }
}

impl Error for ModelError {}

/// A deep neural network described as a linear chain of schedulable layers.
///
/// OmniBoost exploits *inter-layer* (pipeline) parallelism: models are
/// treated as layer chains with well-defined cut points, which matches the
/// paper's formulation (branchy structures such as inception blocks are
/// encapsulated inside a single layer and never split internally).
///
/// ```
/// use omniboost_models::{zoo, ModelId};
///
/// let m = zoo::build(ModelId::AlexNet);
/// assert_eq!(m.name(), "alexnet");
/// assert_eq!(m.num_layers(), 11);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DnnModel {
    name: String,
    input_shape: TensorShape,
    layers: Vec<Layer>,
}

impl DnnModel {
    /// Assembles a model from an ordered layer chain.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Empty`] if `layers` is empty and
    /// [`ModelError::DuplicateLayer`] if two layers share a name.
    pub fn new(
        name: impl Into<String>,
        input_shape: TensorShape,
        layers: Vec<Layer>,
    ) -> Result<Self, ModelError> {
        if layers.is_empty() {
            return Err(ModelError::Empty);
        }
        for (i, a) in layers.iter().enumerate() {
            for b in layers.iter().skip(i + 1) {
                if a.name() == b.name() {
                    return Err(ModelError::DuplicateLayer(a.name().to_owned()));
                }
            }
        }
        Ok(Self {
            name: name.into(),
            input_shape,
            layers,
        })
    }

    /// Model name (lower-case, e.g. `"vgg19"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Shape of the network input.
    pub fn input_shape(&self) -> TensorShape {
        self.input_shape
    }

    /// The ordered layer chain.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Number of schedulable layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Layer by index.
    pub fn layer(&self, index: usize) -> &Layer {
        &self.layers[index]
    }

    /// Total FLOPs per inference.
    pub fn total_flops(&self) -> u64 {
        self.layers.iter().map(Layer::flops).sum()
    }

    /// Total weight bytes (model size at inference).
    pub fn total_weight_bytes(&self) -> u64 {
        self.layers.iter().map(Layer::weight_bytes).sum()
    }

    /// Bytes transferred if the chain is cut *after* layer `index`
    /// (the activation produced by that layer).
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_layers()`.
    pub fn cut_bytes(&self, index: usize) -> usize {
        self.layers[index].output_bytes()
    }
}

impl fmt::Display for DnnModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} layers, {:.2} GFLOP, {:.1} MiB weights)",
            self.name,
            self.num_layers(),
            self.total_flops() as f64 / 1e9,
            self.total_weight_bytes() as f64 / (1024.0 * 1024.0)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Kernel, KernelClass};
    use crate::layer::LayerKind;

    fn layer(name: &str) -> Layer {
        Layer::new(
            name,
            LayerKind::Conv,
            vec![Kernel::new(name, KernelClass::DirectConv)
                .with_flops(10)
                .with_bytes(4, 4, 4)],
            TensorShape::flat(8),
        )
    }

    #[test]
    fn rejects_empty_model() {
        assert_eq!(
            DnnModel::new("m", TensorShape::flat(1), vec![]).unwrap_err(),
            ModelError::Empty
        );
    }

    #[test]
    fn rejects_duplicate_layer_names() {
        let err = DnnModel::new(
            "m",
            TensorShape::flat(1),
            vec![layer("a"), layer("b"), layer("a")],
        )
        .unwrap_err();
        assert_eq!(err, ModelError::DuplicateLayer("a".into()));
    }

    #[test]
    fn aggregates_and_cut_bytes() {
        let m = DnnModel::new(
            TensorShape::flat(1).to_string(),
            TensorShape::flat(1),
            vec![layer("a"), layer("b")],
        )
        .unwrap();
        assert_eq!(m.total_flops(), 20);
        assert_eq!(m.total_weight_bytes(), 8);
        assert_eq!(m.cut_bytes(0), 8 * 4);
    }
}
