//! # omniboost-models
//!
//! DNN model zoo for the OmniBoost (DAC 2023) reproduction.
//!
//! OmniBoost schedules *multi-DNN workloads*: several networks running
//! concurrently, each partitioned layer-wise across the computing
//! components of a heterogeneous embedded board. This crate provides the
//! eleven network architectures the paper evaluates — AlexNet, MobileNet,
//! ResNet-34/50/101, VGG-13/16/19, SqueezeNet and Inception-v3/v4 — as
//! *layer/kernel graphs*: every layer is described by the compute kernels
//! it executes (convolutions, GEMMs, pools, …) together with their FLOP
//! counts and memory traffic, which is exactly the granularity the paper's
//! kernel-based performance exploration (Eq. 1) operates at.
//!
//! The zoo is purely descriptive — no weights, no inference — because the
//! scheduler only ever consumes per-layer cost metadata.
//!
//! ```
//! use omniboost_models::{zoo, ModelId};
//!
//! let vgg = zoo::build(ModelId::Vgg19);
//! assert_eq!(vgg.num_layers(), 24); // 16 conv + 5 pool + 3 fc
//! assert!(vgg.total_flops() > 1_000_000_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod graph;
mod kernel;
mod layer;
pub mod scenarios;
mod shapes;
pub mod stats;
pub mod zoo;

pub use builder::DnnModelBuilder;
pub use graph::{DnnModel, ModelError};
pub use kernel::{Kernel, KernelClass};
pub use layer::{Layer, LayerKind};
pub use scenarios::{
    ArrivalProcess, ArrivalTrace, FleetEvent, FleetScript, FleetScriptConfig, FleetTraceEvent,
    JobEvent, JobSpec, Scenario, SloClass, TraceConfig, TraceEvent,
};
pub use shapes::TensorShape;
pub use stats::{summary_table, ModelStats};
pub use zoo::ModelId;

#[cfg(test)]
mod tests {
    use super::*;

    /// The motivational example of §II schedules AlexNet + MobileNet +
    /// VGG-19 + SqueezeNet, for a total of 84 layers, and reports the
    /// design-space size C(84, 3) ≈ 95,000.
    #[test]
    fn motivational_example_has_84_layers() {
        let total: usize = [
            ModelId::AlexNet,
            ModelId::MobileNet,
            ModelId::Vgg19,
            ModelId::SqueezeNet,
        ]
        .iter()
        .map(|id| zoo::build(*id).num_layers())
        .sum();
        assert_eq!(total, 84);

        // C(84, 3) = 95,284 — the paper rounds to "≈ 95,000".
        let n = 84u64;
        let c3 = n * (n - 1) * (n - 2) / 6;
        assert_eq!(c3, 95_284);
    }
}
