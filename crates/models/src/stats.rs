//! Summary statistics over models — the "Table 1"-style inventory a
//! scheduling paper's readers expect, and a quick way to sanity-check a
//! custom model against the zoo.

use crate::graph::DnnModel;
use crate::kernel::KernelClass;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregate statistics of one model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelStats {
    /// Model name.
    pub name: String,
    /// Schedulable layer count.
    pub layers: usize,
    /// Total kernels across layers.
    pub kernels: usize,
    /// Giga-FLOPs per inference (MACs × 2 convention).
    pub gflops: f64,
    /// Weight footprint in MiB.
    pub weight_mib: f64,
    /// Largest single activation in MiB (the worst-case stage transfer).
    pub max_activation_mib: f64,
    /// Fraction of FLOPs spent in depthwise convolutions — high values
    /// flag GPU-unfriendly networks (MobileNet-style).
    pub depthwise_flop_fraction: f64,
}

impl ModelStats {
    /// Computes the statistics of a model.
    pub fn of(model: &DnnModel) -> Self {
        let total_flops = model.total_flops().max(1);
        let dw_flops: u64 = model
            .layers()
            .iter()
            .flat_map(|l| l.kernels())
            .filter(|k| k.class() == KernelClass::DepthwiseConv)
            .map(|k| k.flops())
            .sum();
        let max_act = model
            .layers()
            .iter()
            .map(|l| l.output_bytes())
            .max()
            .unwrap_or(0);
        Self {
            name: model.name().to_owned(),
            layers: model.num_layers(),
            kernels: model.layers().iter().map(|l| l.kernels().len()).sum(),
            gflops: model.total_flops() as f64 / 1e9,
            weight_mib: model.total_weight_bytes() as f64 / (1024.0 * 1024.0),
            max_activation_mib: max_act as f64 / (1024.0 * 1024.0),
            depthwise_flop_fraction: dw_flops as f64 / total_flops as f64,
        }
    }
}

impl fmt::Display for ModelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} {:>6} {:>8} {:>9.2} {:>10.1} {:>10.2} {:>7.1}%",
            self.name,
            self.layers,
            self.kernels,
            self.gflops,
            self.weight_mib,
            self.max_activation_mib,
            self.depthwise_flop_fraction * 100.0
        )
    }
}

/// Formats a stats table for a set of models.
pub fn summary_table(models: &[DnnModel]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:>6} {:>8} {:>9} {:>10} {:>10} {:>8}\n",
        "model", "layers", "kernels", "GFLOP", "weightMiB", "actMiB", "dw%"
    ));
    for m in models {
        out.push_str(&ModelStats::of(m).to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{self, ModelId};

    #[test]
    fn mobilenet_is_depthwise_heavy_vgg_is_not() {
        let mobile = ModelStats::of(&zoo::build(ModelId::MobileNet));
        let vgg = ModelStats::of(&zoo::build(ModelId::Vgg16));
        assert!(mobile.depthwise_flop_fraction > 0.02);
        assert_eq!(vgg.depthwise_flop_fraction, 0.0);
    }

    #[test]
    fn vgg_weights_dwarf_squeezenet() {
        let vgg = ModelStats::of(&zoo::build(ModelId::Vgg19));
        let squeeze = ModelStats::of(&zoo::build(ModelId::SqueezeNet));
        assert!(vgg.weight_mib > 400.0, "vgg19 = {:.0} MiB", vgg.weight_mib);
        assert!(squeeze.weight_mib < 10.0);
    }

    #[test]
    fn summary_table_has_one_row_per_model() {
        let models = zoo::build_all();
        let table = summary_table(&models);
        assert_eq!(table.lines().count(), models.len() + 1);
        assert!(table.contains("alexnet"));
        assert!(table.contains("inception-v4"));
    }
}
