//! Property-based tests over the fleet-orchestration control plane.

use omniboost_hw::{AnalyticModel, Board};
use omniboost_models::{
    ArrivalProcess, ArrivalTrace, FleetEvent, FleetScript, FleetScriptConfig, FleetTraceEvent,
    JobEvent, JobSpec, ModelId, TraceConfig, TraceEvent,
};
use omniboost_orchestrator::{
    BoardProfile, CellConfig, EvacOrder, FleetSpec, OrchestratorConfig, OrchestratorReport,
    OrchestratorSim, QueueOrder, RebalanceConfig,
};
use omniboost_serve::{AdmissionPolicy, OnlineConfig, PlacementPolicy, SearchBudget};
use proptest::prelude::*;

const HORIZON_MS: u64 = 30_000;

fn quick_online() -> OnlineConfig {
    OnlineConfig {
        cold_budget: SearchBudget::with_iterations(50),
        warm_budget: SearchBudget::with_iterations(20),
        ..OnlineConfig::default()
    }
}

fn trace_config() -> TraceConfig {
    TraceConfig {
        horizon_ms: HORIZON_MS,
        mean_lifetime_ms: 9_000.0,
        ..TraceConfig::default()
    }
}

fn arb_process() -> impl Strategy<Value = ArrivalProcess> {
    proptest::sample::select(vec![
        ArrivalProcess::Poisson { rate_per_s: 0.9 },
        ArrivalProcess::Bursty {
            on_rate_per_s: 1.8,
            on_ms: 5_000,
            off_ms: 6_000,
        },
    ])
}

fn spec() -> FleetSpec {
    FleetSpec::heterogeneous(vec![
        BoardProfile::hikey970(),
        BoardProfile::hikey970(),
        BoardProfile::hikey970_lite(),
    ])
}

fn script(seed: u64) -> FleetScript {
    FleetScript::generate(
        &FleetScriptConfig {
            horizon_ms: HORIZON_MS,
            initial_boards: 3,
            join_profiles: 2,
            mean_fail_interval_ms: 12_000.0,
            mean_drain_interval_ms: 20_000.0,
            mean_join_interval_ms: 15_000.0,
            ..FleetScriptConfig::default()
        },
        seed,
    )
}

/// A script that exercises every lifecycle event kind: failures,
/// drains, joins, degrades, recoveries and fail→rejoin flaps.
fn chaos_script(seed: u64) -> FleetScript {
    FleetScript::generate(
        &FleetScriptConfig {
            horizon_ms: HORIZON_MS,
            initial_boards: 3,
            join_profiles: 2,
            mean_fail_interval_ms: 15_000.0,
            mean_drain_interval_ms: 25_000.0,
            mean_join_interval_ms: 15_000.0,
            mean_degrade_interval_ms: 10_000.0,
            mean_recover_interval_ms: 8_000.0,
            degrade_profiles: 2,
            mean_flap_interval_ms: 20_000.0,
            flap_down_ms: 3_000,
        },
        seed,
    )
}

fn chaos_run(process: ArrivalProcess, seed: u64, config: OrchestratorConfig) -> OrchestratorReport {
    let trace = ArrivalTrace::generate(process, &trace_config(), seed);
    let script = chaos_script(seed ^ 0xC4A05);
    let mut sim = OrchestratorSim::new(spec(), config, AnalyticModel::new);
    sim.run(&trace, &script, HORIZON_MS)
}

fn run(process: ArrivalProcess, seed: u64, config: OrchestratorConfig) -> OrchestratorReport {
    let trace = ArrivalTrace::generate(process, &trace_config(), seed);
    let script = script(seed ^ 0xF1EE7);
    let mut sim = OrchestratorSim::new(spec(), config, AnalyticModel::new);
    sim.run(&trace, &script, HORIZON_MS)
}

fn config(rebalance: bool) -> OrchestratorConfig {
    OrchestratorConfig {
        online: quick_online(),
        rebalance: rebalance.then_some(RebalanceConfig {
            period_ms: 3_000,
            min_imbalance: 0.1,
            min_gain_per_layer: 0.02,
            cooldown_periods: 1,
            max_moves_per_tick: 1,
            top_k_boards: 2,
        }),
        ..OrchestratorConfig::warm()
    }
}

/// The rebalancing modes the proptests sweep: `0` pins jobs (no
/// rebalancer), `1` runs the single whole-fleet rebalancer, `2` runs
/// batched multi-move rebalancing through sharded cells (cell size 2,
/// so the 3-board fleet plus joins actually spans several cells and the
/// cross-cell balancer engages).
fn config_mode(mode: u8) -> OrchestratorConfig {
    match mode {
        0 => config(false),
        1 => config(true),
        _ => OrchestratorConfig {
            rebalance: Some(RebalanceConfig {
                max_moves_per_tick: 3,
                top_k_boards: 3,
                ..config(true).rebalance.unwrap()
            }),
            cells: Some(CellConfig {
                cell_size: 2,
                ..CellConfig::default()
            }),
            ..config(false)
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// (i) **Job conservation through failures, drains, joins and
    /// rebalancing** (pinned, single rebalancer and sharded cells): at
    /// every tick the resident + queued job count equals the
    /// arrived-minus-departed count (nothing lost, nothing duplicated),
    /// per-event evacuation accounting balances, and the end-of-run
    /// `lost_jobs` audit is zero.
    #[test]
    fn evacuation_conserves_jobs(
        process in arb_process(),
        seed in 0u64..400,
        mode in 0u8..3,
    ) {
        let report = run(process, seed, config_mode(mode));
        prop_assert_eq!(report.summary.lost_jobs, 0);
        let s = &report.summary;
        prop_assert_eq!(
            s.evacuated_jobs,
            s.evacuees_relocated_same_tick + s.evacuees_queued,
            "per-event evacuation accounting must balance"
        );
        let mut live = 0i64;
        for tick in &report.ticks {
            for fe in &tick.fleet_events {
                prop_assert_eq!(
                    fe.evacuated.len(),
                    fe.relocated + fe.queued,
                    "evacuees must be re-placed or queued"
                );
            }
            for e in &tick.events {
                match e {
                    JobEvent::Arrive(_) => live += 1,
                    JobEvent::Depart { .. } => live -= 1,
                }
            }
            let resident: usize = tick.board_jobs.iter().sum();
            prop_assert_eq!(
                (resident + tick.queue_depth) as i64,
                live,
                "at {} ms: {} resident + {} queued != {} live",
                tick.at_ms, resident, tick.queue_depth, live
            );
        }
    }

    /// (ii) **Rebalancing never violates admission**: every board stays
    /// within its own profile's concurrent-DNN cap at every tick (the
    /// heterogeneous fleet has different caps per slot), failed boards
    /// hold zero jobs, and every accepted move priced a positive gain.
    #[test]
    fn rebalancing_respects_admission_and_prices_gains(
        process in arb_process(),
        seed in 0u64..400,
        mode in 1u8..3,
    ) {
        let report = run(process, seed, config_mode(mode));
        // Slot caps: the three initial profiles, then joins in event
        // order resolved against the spec's join pool.
        let spec = spec();
        let mut caps: Vec<usize> = spec
            .initial
            .iter()
            .map(|p| p.board.max_concurrent_dnns)
            .collect();
        let mut dead: Vec<usize> = Vec::new();
        for tick in &report.ticks {
            for fe in &tick.fleet_events {
                match fe.event {
                    FleetEvent::BoardJoin { profile } => {
                        if let Some(slot) = fe.slot {
                            prop_assert_eq!(slot, caps.len(), "joins append");
                            let p = &spec.join_profiles[profile % spec.join_profiles.len()];
                            caps.push(p.board.max_concurrent_dnns);
                        }
                    }
                    FleetEvent::BoardFail { .. } | FleetEvent::BoardDrain { .. } => {
                        if let Some(slot) = fe.slot {
                            dead.push(slot);
                        }
                    }
                    // The non-chaos script never emits these.
                    FleetEvent::BoardDegrade { .. } | FleetEvent::BoardRecover { .. } => {}
                }
            }
            for (slot, jobs) in tick.board_jobs.iter().enumerate() {
                prop_assert!(
                    *jobs <= caps[slot],
                    "slot {slot} over its cap at {} ms: {jobs} > {}",
                    tick.at_ms, caps[slot]
                );
                if dead.contains(&slot) {
                    prop_assert_eq!(*jobs, 0usize, "dead board holding jobs");
                }
            }
            for mv in &tick.rebalances {
                prop_assert!(mv.gain_tps > 0.0, "move accepted without gain");
                prop_assert!(!dead.contains(&mv.to), "move onto a dead board");
                prop_assert!(mv.from != mv.to);
            }
        }
    }

    /// (iii) **Orchestrated traces are bit-for-bit deterministic per
    /// seed**, including the sharded-cell mode whose per-cell passes run
    /// on the rayon pool: two fresh control planes produce identical
    /// digests, and a different seed produces different traffic.
    #[test]
    fn orchestrated_replay_is_deterministic_per_seed(
        process in arb_process(),
        seed in 0u64..400,
        mode in 0u8..3,
    ) {
        let a = run(process, seed, config_mode(mode));
        let b = run(process, seed, config_mode(mode));
        prop_assert_eq!(a.digest(), b.digest());
        prop_assert_eq!(a.ticks.len(), b.ticks.len());
        prop_assert_eq!(a.summary.mean_aggregate_tps, b.summary.mean_aggregate_tps);
        prop_assert_eq!(a.summary.rebalance_moves, b.summary.rebalance_moves);
        let c = run(process, seed + 1000, config_mode(mode));
        prop_assert_ne!(a.digest(), c.digest());
    }
}

/// A deterministic board failure mid-trace: the evacuation path must
/// fire, recover every job, and report evacuation latency.
#[test]
fn board_failure_evacuates_and_reports_latency() {
    let trace = ArrivalTrace::generate(
        ArrivalProcess::Poisson { rate_per_s: 0.8 },
        &TraceConfig {
            mean_lifetime_ms: 20_000.0,
            ..trace_config()
        },
        11,
    );
    let script = FleetScript::new(vec![FleetTraceEvent {
        at_ms: HORIZON_MS / 2,
        event: FleetEvent::BoardFail { board: 0 },
    }]);
    let mut sim = OrchestratorSim::new(
        FleetSpec::homogeneous(2, BoardProfile::hikey970()),
        config(false),
        AnalyticModel::new,
    );
    let report = sim.run(&trace, &script, HORIZON_MS);
    assert_eq!(report.summary.board_failures, 1);
    assert!(report.summary.evacuated_jobs > 0, "board 0 should be busy");
    assert_eq!(report.summary.lost_jobs, 0);
    assert_eq!(
        report.summary.evacuation_wait.count + report.summary.evacuees_still_queued,
        report.summary.evacuated_jobs,
        "every evacuee has either a latency sample or is still waiting"
    );
    // The failed board never serves again.
    let fail_tick = report
        .ticks
        .iter()
        .position(|t| !t.fleet_events.is_empty())
        .unwrap();
    for tick in &report.ticks[fail_tick..] {
        assert_eq!(tick.board_jobs[0], 0);
        assert!(tick.active_boards == 1);
    }
}

/// A joined board becomes a placement target: with one saturated board
/// and a queue, a join must drain waiting jobs onto the new board.
#[test]
fn board_join_drains_the_queue() {
    // Saturate a single board: heavy steady arrivals, long lifetimes.
    let trace = ArrivalTrace::generate(
        ArrivalProcess::Poisson { rate_per_s: 1.2 },
        &TraceConfig {
            mean_lifetime_ms: 60_000.0,
            ..trace_config()
        },
        3,
    );
    let script = FleetScript::new(vec![FleetTraceEvent {
        at_ms: 20_000,
        event: FleetEvent::BoardJoin { profile: 0 },
    }]);
    let mut sim = OrchestratorSim::new(
        FleetSpec::homogeneous(1, BoardProfile::hikey970()),
        config(false),
        AnalyticModel::new,
    );
    let report = sim.run(&trace, &script, HORIZON_MS);
    assert_eq!(report.summary.board_joins, 1);
    let join_tick = report
        .ticks
        .iter()
        .find(|t| !t.fleet_events.is_empty())
        .expect("join tick recorded");
    assert!(
        !join_tick.placements.is_empty(),
        "the join should immediately drain queued jobs"
    );
    assert_eq!(join_tick.board_jobs.len(), 2);
    assert!(join_tick.board_jobs[1] > 0, "new board took jobs");
}

/// `QueueOrder::TenantDeficit` drains the starved tenant first: with a
/// single board fully held by tenant 0 and one queued job per tenant,
/// the slot a departure frees goes to tenant 0's earlier-queued job
/// under FIFO but to tenant 1's (zero attained throughput so far)
/// under the deficit order.
#[test]
fn tenant_deficit_queue_order_serves_starved_tenant_first() {
    let cap = Board::hikey970().max_concurrent_dnns as u64;
    let mut events = Vec::new();
    for id in 1..=cap {
        events.push(TraceEvent {
            at_ms: 1_000 * id,
            event: JobEvent::Arrive(JobSpec::new(id, ModelId::MobileNet, 0)),
        });
    }
    for (id, tenant) in [(cap + 1, 0u32), (cap + 2, 1u32)] {
        events.push(TraceEvent {
            at_ms: 1_000 * id,
            event: JobEvent::Arrive(JobSpec::new(id, ModelId::MobileNet, tenant)),
        });
    }
    events.push(TraceEvent {
        at_ms: 10_000,
        event: JobEvent::Depart { job_id: 1 },
    });
    let trace = ArrivalTrace::from_events(events);
    let run = |order: QueueOrder| {
        let config = OrchestratorConfig {
            placement: PlacementPolicy::LeastLoaded,
            admission: AdmissionPolicy {
                order,
                ..AdmissionPolicy::default()
            },
            ..config(false)
        };
        let mut sim = OrchestratorSim::new(
            FleetSpec::homogeneous(1, BoardProfile::hikey970()),
            config,
            AnalyticModel::new,
        );
        sim.run(&trace, &FleetScript::new(Vec::new()), 12_000)
    };
    let drained_job = |report: &OrchestratorReport| {
        let tick = report
            .ticks
            .iter()
            .find(|t| t.at_ms == 10_000)
            .expect("departure tick recorded");
        assert_eq!(tick.placements.len(), 1, "exactly one slot freed");
        tick.placements[0].0
    };
    assert_eq!(drained_job(&run(QueueOrder::Fifo)), cap + 1);
    assert_eq!(drained_job(&run(QueueOrder::TenantDeficit)), cap + 2);
}

/// Evacuation ordering on board failure: with one VGG-19 among
/// MobileNets on the failing board, `HeaviestFirst` re-places the
/// VGG-19 before anything else while `Arrival` re-places the oldest
/// job first.
#[test]
fn evacuation_relocates_heaviest_models_first() {
    // Round-robin over two boards: odd ids land on board 0 (ids 1, 3, 5
    // with id 3 the VGG-19), even ids on board 1.
    let events = (1..=6u64)
        .map(|id| TraceEvent {
            at_ms: 1_000 * id,
            event: JobEvent::Arrive(JobSpec::new(
                id,
                if id == 3 {
                    ModelId::Vgg19
                } else {
                    ModelId::MobileNet
                },
                0,
            )),
        })
        .collect();
    let trace = ArrivalTrace::from_events(events);
    let script = FleetScript::new(vec![FleetTraceEvent {
        at_ms: 10_000,
        event: FleetEvent::BoardFail { board: 0 },
    }]);
    let run = |order: EvacOrder| {
        let config = OrchestratorConfig {
            placement: PlacementPolicy::RoundRobin,
            evac_order: order,
            ..config(false)
        };
        let mut sim = OrchestratorSim::new(
            FleetSpec::homogeneous(2, BoardProfile::hikey970()),
            config,
            AnalyticModel::new,
        );
        sim.run(&trace, &script, 15_000)
    };
    let first_relocation = |report: &OrchestratorReport| {
        let tick = report
            .ticks
            .iter()
            .find(|t| !t.fleet_events.is_empty())
            .expect("failure tick recorded");
        let fe = &tick.fleet_events[0];
        let mut evacuated = fe.evacuated.clone();
        evacuated.sort_unstable();
        assert_eq!(evacuated, vec![1, 3, 5], "board 0 held the odd ids");
        assert_eq!(report.summary.lost_jobs, 0);
        tick.placements
            .first()
            .expect("board 1 has headroom for at least one evacuee")
            .0
    };
    assert_eq!(first_relocation(&run(EvacOrder::HeaviestFirst)), 3);
    assert_eq!(first_relocation(&run(EvacOrder::Arrival)), 1);
}

/// Batched rebalancing commits several moves in one priced set: two
/// saturated boards, two freshly joined empty boards, one rebalance
/// tick — both donors must shed a job in the same tick, each move
/// carrying a positive apportioned gain.
#[test]
fn batched_rebalance_commits_multiple_moves_in_one_tick() {
    let events = (1..=8u64)
        .map(|id| TraceEvent {
            at_ms: 500 * id,
            event: JobEvent::Arrive(JobSpec::new(id, ModelId::MobileNet, 0)),
        })
        .collect();
    let trace = ArrivalTrace::from_events(events);
    let script = FleetScript::new(vec![
        FleetTraceEvent {
            at_ms: 10_000,
            event: FleetEvent::BoardJoin { profile: 0 },
        },
        FleetTraceEvent {
            at_ms: 10_000,
            event: FleetEvent::BoardJoin { profile: 0 },
        },
    ]);
    let config = OrchestratorConfig {
        placement: PlacementPolicy::RoundRobin,
        rebalance: Some(RebalanceConfig {
            period_ms: 12_000,
            min_imbalance: 0.05,
            min_gain_per_layer: 0.001,
            cooldown_periods: 1,
            max_moves_per_tick: 4,
            top_k_boards: 4,
        }),
        ..config(false)
    };
    let mut sim = OrchestratorSim::new(
        FleetSpec::homogeneous(2, BoardProfile::hikey970()),
        config,
        AnalyticModel::new,
    );
    let report = sim.run(&trace, &script, 20_000);
    let batched = report
        .ticks
        .iter()
        .find(|t| t.rebalances.len() >= 2)
        .expect("one tick commits a multi-move set");
    let donors: Vec<usize> = batched.rebalances.iter().map(|m| m.from).collect();
    assert!(
        donors.contains(&0) && donors.contains(&1),
        "both loaded boards donate in the same tick: {donors:?}"
    );
    for mv in &batched.rebalances {
        assert!(
            mv.gain_tps > 0.0,
            "apportioned per-move gain stays positive"
        );
        assert!(mv.to >= 2, "moves target the joined boards");
    }
    assert_eq!(report.summary.lost_jobs, 0);
}

// ---------------------------------------------------------------------------
// Admission-mempool properties (PR 7).
// ---------------------------------------------------------------------------

/// Behaviour preservation across the mempool extraction: the default
/// [`AdmissionPolicy`] must replay exactly the digest the pre-mempool
/// `OrchestratorSim` (own FIFO `VecDeque`, linear drains) produced for
/// this seed/config pair, captured at the commit *before* the refactor.
#[test]
fn mempool_refactor_preserves_seeded_replay_digest() {
    let trace = ArrivalTrace::generate(
        ArrivalProcess::Bursty {
            on_rate_per_s: 1.8,
            on_ms: 5_000,
            off_ms: 6_000,
        },
        &TraceConfig {
            horizon_ms: HORIZON_MS,
            mean_lifetime_ms: 8_000.0,
            ..TraceConfig::default()
        },
        11,
    );
    let script = script(11 ^ 0xF1EE7);
    let config = OrchestratorConfig {
        online: OnlineConfig {
            cold_budget: SearchBudget::with_iterations(60),
            warm_budget: SearchBudget::with_iterations(24),
            ..OnlineConfig::default()
        },
        rebalance: Some(RebalanceConfig {
            period_ms: 3_000,
            min_imbalance: 0.1,
            min_gain_per_layer: 0.02,
            cooldown_periods: 1,
            max_moves_per_tick: 1,
            top_k_boards: 2,
        }),
        ..OrchestratorConfig::warm()
    };
    let mut sim = OrchestratorSim::new(spec(), config, AnalyticModel::new);
    let report = sim.run(&trace, &script, HORIZON_MS);
    assert_eq!(report.digest(), 0x156b_b4cb_2add_ddcf);
}

/// Telemetry is observational only: attaching a recording handle must
/// replay exactly the pinned digest, while the chaos counters, flight
/// recorder and spans fill up on the side.
#[test]
fn recording_telemetry_is_digest_neutral() {
    let trace = ArrivalTrace::generate(
        ArrivalProcess::Bursty {
            on_rate_per_s: 1.8,
            on_ms: 5_000,
            off_ms: 6_000,
        },
        &TraceConfig {
            horizon_ms: HORIZON_MS,
            mean_lifetime_ms: 8_000.0,
            ..TraceConfig::default()
        },
        11,
    );
    let script = script(11 ^ 0xF1EE7);
    let config = OrchestratorConfig {
        online: OnlineConfig {
            cold_budget: SearchBudget::with_iterations(60),
            warm_budget: SearchBudget::with_iterations(24),
            ..OnlineConfig::default()
        },
        rebalance: Some(RebalanceConfig {
            period_ms: 3_000,
            min_imbalance: 0.1,
            min_gain_per_layer: 0.02,
            cooldown_periods: 1,
            max_moves_per_tick: 1,
            top_k_boards: 2,
        }),
        ..OrchestratorConfig::warm()
    };
    let mut sim = OrchestratorSim::new(spec(), config, AnalyticModel::new);
    let telemetry = omniboost_orchestrator::Telemetry::recording();
    sim.set_telemetry(telemetry.clone());
    let report = sim.run(&trace, &script, HORIZON_MS);
    assert_eq!(
        report.digest(),
        0x156b_b4cb_2add_ddcf,
        "recording telemetry must not perturb the replay"
    );
    // Satellite: the chaos tallies mirror into the registry and agree
    // with the summary the run reports.
    let s = &report.summary;
    assert_eq!(
        telemetry.counter_value("orchestrator.warm_boots"),
        s.warm_boots as u64
    );
    assert_eq!(
        telemetry.counter_value("orchestrator.warm_boot_entries"),
        s.warm_boot_entries as u64
    );
    assert_eq!(
        telemetry.counter_value("orchestrator.evacuated_jobs"),
        s.evacuated_jobs as u64
    );
    assert_eq!(
        telemetry.counter_value("orchestrator.lost_jobs"),
        s.lost_jobs as u64
    );
    // Chaos incidents from this script land in the flight recorder, and
    // the orchestrator's own phases (plus the board runtimes it drives)
    // contribute spans.
    assert!(
        !telemetry.flight_events().is_empty(),
        "fleet churn should leave flight-recorder entries"
    );
    let spans = telemetry.spans();
    assert!(spans.iter().any(|s| s.name.starts_with("orchestrator.")));
    assert!(spans.iter().any(|s| s.name.starts_with("core.")));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// (vi) **Strict admission conserves jobs through fleet churn**:
    /// with quotas, TTL eviction, retry backoff and the deficit drain
    /// all engaged on top of failures/drains/joins/rebalancing, every
    /// arrival still ends in exactly one of {resident, queued,
    /// departed, rejected, expired} at every tick, and the end-of-run
    /// `lost_jobs` audit stays zero (rejected/expired jobs are
    /// first-class accounting, not losses).
    #[test]
    fn strict_admission_conserves_jobs_through_fleet_churn(
        process in arb_process(),
        seed in 0u64..400,
        mode in 0u8..3,
    ) {
        let config = OrchestratorConfig {
            admission: AdmissionPolicy {
                order: QueueOrder::TenantDeficit,
                tenant_queue_quota: Some(2),
                ttl_ms: Some(4_000),
                retry_backoff_ms: Some(100),
                max_backoff_ms: 2_000,
                ..AdmissionPolicy::default()
            },
            ..config_mode(mode)
        };
        let report = run(process, seed, config);
        prop_assert_eq!(report.summary.lost_jobs, 0);
        let mut live = std::collections::HashSet::new();
        let mut rejected = 0usize;
        let mut expired = 0usize;
        for tick in &report.ticks {
            // The TTL sweep runs at tick start, before the tick's events.
            for id in &tick.expired {
                prop_assert!(live.remove(id), "expired job {} was not live", id);
                expired += 1;
            }
            for e in &tick.events {
                match e {
                    JobEvent::Arrive(job) => {
                        if !tick.rejected.contains(&job.id) {
                            prop_assert!(live.insert(job.id));
                        }
                    }
                    JobEvent::Depart { job_id } => {
                        // Departures of rejected/expired jobs are no-ops.
                        live.remove(job_id);
                    }
                }
            }
            rejected += tick.rejected.len();
            let resident: usize = tick.board_jobs.iter().sum();
            prop_assert_eq!(
                resident + tick.queue_depth,
                live.len(),
                "at {} ms: {} resident + {} queued != {} live",
                tick.at_ms, resident, tick.queue_depth, live.len()
            );
        }
        prop_assert_eq!(report.summary.rejected, rejected);
        prop_assert_eq!(report.summary.expired, expired);
    }
}

// ---------------------------------------------------------------------------
// Partial-failure chaos properties (PR 8).
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// (vii) **Chaos conservation and degraded-capacity respect**: under
    /// a script mixing failures, drains, joins, degrades, recoveries and
    /// flaps, no job is ever lost, dead boards hold nothing, and every
    /// board — including boards degraded in place — stays within the cap
    /// of the profile it is *currently* running.
    #[test]
    fn chaos_conserves_jobs_and_respects_degraded_caps(
        process in arb_process(),
        seed in 0u64..400,
        mode in 0u8..3,
    ) {
        let report = chaos_run(process, seed, config_mode(mode));
        prop_assert_eq!(report.summary.lost_jobs, 0);
        let s = &report.summary;
        prop_assert_eq!(
            s.evacuated_jobs,
            s.evacuees_relocated_same_tick + s.evacuees_queued,
            "evacuation accounting balances under chaos"
        );
        // Mirror the sim's profile bookkeeping: per-slot current cap,
        // the pre-degrade cap remembered for recovery, and dead slots.
        let spec = spec();
        let mut caps: Vec<usize> = spec
            .initial
            .iter()
            .map(|p| p.board.max_concurrent_dnns)
            .collect();
        let mut healthy: Vec<usize> = caps.clone();
        let mut dead: Vec<bool> = vec![false; caps.len()];
        let mut live = 0i64;
        for tick in &report.ticks {
            for fe in &tick.fleet_events {
                prop_assert_eq!(
                    fe.evacuated.len(),
                    fe.relocated + fe.queued,
                    "evacuees must be re-placed or queued"
                );
                let Some(slot) = fe.slot else { continue };
                match fe.event {
                    FleetEvent::BoardJoin { profile } => {
                        prop_assert_eq!(slot, caps.len(), "joins append");
                        let p = &spec.join_profiles[profile % spec.join_profiles.len()];
                        caps.push(p.board.max_concurrent_dnns);
                        healthy.push(p.board.max_concurrent_dnns);
                        dead.push(false);
                    }
                    FleetEvent::BoardFail { .. } | FleetEvent::BoardDrain { .. } => {
                        dead[slot] = true;
                    }
                    FleetEvent::BoardDegrade { profile, .. } => {
                        let p = &spec.degrade_profiles[profile % spec.degrade_profiles.len()];
                        caps[slot] = p.board.max_concurrent_dnns;
                    }
                    FleetEvent::BoardRecover { .. } => {
                        caps[slot] = healthy[slot];
                    }
                }
            }
            for e in &tick.events {
                match e {
                    JobEvent::Arrive(_) => live += 1,
                    JobEvent::Depart { .. } => live -= 1,
                }
            }
            for (slot, jobs) in tick.board_jobs.iter().enumerate() {
                prop_assert!(
                    *jobs <= caps[slot],
                    "slot {slot} over its current-profile cap at {} ms: {jobs} > {}",
                    tick.at_ms, caps[slot]
                );
                if dead[slot] {
                    prop_assert_eq!(*jobs, 0usize, "dead board holding jobs");
                }
            }
            let resident: usize = tick.board_jobs.iter().sum();
            prop_assert_eq!(
                (resident + tick.queue_depth) as i64,
                live,
                "at {} ms: {} resident + {} queued != {} live",
                tick.at_ms, resident, tick.queue_depth, live
            );
        }
    }

    /// (viii) **Chaos replay is bit-for-bit deterministic per seed** —
    /// warm-boot preloads, in-place swaps and targeted post-degrade
    /// rebalancing included.
    #[test]
    fn chaos_replay_is_deterministic_per_seed(
        process in arb_process(),
        seed in 0u64..400,
        mode in 0u8..3,
    ) {
        let a = chaos_run(process, seed, config_mode(mode));
        let b = chaos_run(process, seed, config_mode(mode));
        prop_assert_eq!(a.digest(), b.digest());
        prop_assert_eq!(a.summary.board_degrades, b.summary.board_degrades);
        prop_assert_eq!(a.summary.warm_boot_entries, b.summary.warm_boot_entries);
        let c = chaos_run(process, seed + 1000, config_mode(mode));
        prop_assert_ne!(a.digest(), c.digest());
    }
}

/// A scripted brown-out and recovery: the degrade must shed exactly the
/// jobs the weaker profile no longer admits (the rest stay resident,
/// re-priced in place), and the recovery restores the healthy cap.
#[test]
fn board_degrade_sheds_only_the_overflow_and_recovery_restores() {
    // Fill board 0 to the full hikey970 cap (5) with long-lived jobs.
    let cap = Board::hikey970().max_concurrent_dnns as u64;
    let events = (1..=cap)
        .map(|id| TraceEvent {
            at_ms: 500 * id,
            event: JobEvent::Arrive(JobSpec::new(id, ModelId::MobileNet, 0)),
        })
        .collect();
    let trace = ArrivalTrace::from_events(events);
    // Degrade to the GPU-masked profile (cap 3, pool index 1) at 10 s,
    // recover at 20 s.
    let script = FleetScript::new(vec![
        FleetTraceEvent {
            at_ms: 10_000,
            event: FleetEvent::BoardDegrade {
                board: 0,
                profile: 1,
            },
        },
        FleetTraceEvent {
            at_ms: 20_000,
            event: FleetEvent::BoardRecover { board: 0 },
        },
    ]);
    let mut sim = OrchestratorSim::new(
        FleetSpec::homogeneous(1, BoardProfile::hikey970()),
        config(false),
        AnalyticModel::new,
    );
    let report = sim.run(&trace, &script, HORIZON_MS);
    assert_eq!(report.summary.board_degrades, 1);
    assert_eq!(report.summary.board_recovers, 1);
    assert_eq!(report.summary.lost_jobs, 0);
    let degraded_cap = Board::hikey970_gpu_down().max_concurrent_dnns;
    let shed = cap as usize - degraded_cap;
    assert_eq!(
        report.summary.degrade_evictions, shed,
        "degrade-in-place sheds only what the weaker profile cannot admit"
    );
    let degrade_tick = report
        .ticks
        .iter()
        .find(|t| t.at_ms == 10_000)
        .expect("degrade tick recorded");
    assert_eq!(degrade_tick.fleet_events[0].evacuated.len(), shed);
    assert_eq!(
        degrade_tick.board_jobs[0], degraded_cap,
        "survivors stay resident on the degraded board"
    );
    // With nowhere else to go the overflow waits in queue; recovery
    // restores the healthy cap and drains it back the same tick.
    assert_eq!(degrade_tick.queue_depth, shed);
    let recover_tick = report
        .ticks
        .iter()
        .find(|t| t.at_ms == 20_000)
        .expect("recover tick recorded");
    assert_eq!(recover_tick.board_jobs[0], cap as usize);
    assert_eq!(recover_tick.queue_depth, 0);
}

/// A fail→rejoin flap warm-boots: the rejoining board's profile matches
/// an archived cache segment, so the preload installs a nonzero number
/// of evaluation-cache entries.
#[test]
fn flapped_board_warm_boots_from_the_cache_archive() {
    let trace = ArrivalTrace::generate(
        ArrivalProcess::Poisson { rate_per_s: 1.0 },
        &TraceConfig {
            mean_lifetime_ms: 40_000.0,
            ..trace_config()
        },
        7,
    );
    // Board 0 fails at 12 s; the same profile rejoins at 18 s. The
    // failing board's caches were archived on the way down, so the
    // rejoin preloads them by fingerprint.
    let script = FleetScript::new(vec![
        FleetTraceEvent {
            at_ms: 12_000,
            event: FleetEvent::BoardFail { board: 0 },
        },
        FleetTraceEvent {
            at_ms: 18_000,
            event: FleetEvent::BoardJoin { profile: 0 },
        },
    ]);
    let mut sim = OrchestratorSim::new(
        FleetSpec::homogeneous(2, BoardProfile::hikey970()),
        config(false),
        AnalyticModel::new,
    );
    let report = sim.run(&trace, &script, HORIZON_MS);
    assert_eq!(report.summary.board_failures, 1);
    assert_eq!(report.summary.board_joins, 1);
    assert!(
        report.summary.warm_boots >= 1,
        "the rejoin must hit an archived segment"
    );
    assert!(
        report.summary.warm_boot_entries > 0,
        "warm boot preloads real evaluation-cache entries"
    );
    assert_eq!(report.summary.lost_jobs, 0);
}

/// Evacuation ordering pins `TenantDeficitFirst` semantics: on a board
/// failure the first re-placed evacuee belongs to the tenant with the
/// least attained throughput integral (here tenant 2, whose single
/// MobileNet arrived last), even though another evacuee (tenant 0's
/// VGG-19) is far heavier — while `HeaviestFirst` still picks the
/// VGG-19 first.
#[test]
fn evacuation_relocates_most_deficient_tenant_first() {
    // Round-robin over two boards: odd ids (1, 3, 5) land on board 0.
    // Tenant 0 owns everything except job 5 (tenant 2): five jobs
    // including the VGG-19, attaining a large throughput integral by
    // the failure; tenant 2's lone late MobileNet attained the least.
    let events = (1..=6u64)
        .map(|id| TraceEvent {
            at_ms: 1_000 * id,
            event: JobEvent::Arrive(JobSpec::new(
                id,
                if id == 3 {
                    ModelId::Vgg19
                } else {
                    ModelId::MobileNet
                },
                if id == 5 { 2 } else { 0 },
            )),
        })
        .collect();
    let trace = ArrivalTrace::from_events(events);
    let script = FleetScript::new(vec![FleetTraceEvent {
        at_ms: 10_000,
        event: FleetEvent::BoardFail { board: 0 },
    }]);
    let run = |order: EvacOrder| {
        let config = OrchestratorConfig {
            placement: PlacementPolicy::RoundRobin,
            evac_order: order,
            ..config(false)
        };
        let mut sim = OrchestratorSim::new(
            FleetSpec::homogeneous(2, BoardProfile::hikey970()),
            config,
            AnalyticModel::new,
        );
        sim.run(&trace, &script, 15_000)
    };
    let first_relocation = |report: &OrchestratorReport| {
        let tick = report
            .ticks
            .iter()
            .find(|t| !t.fleet_events.is_empty())
            .expect("failure tick recorded");
        let mut evacuated = tick.fleet_events[0].evacuated.clone();
        evacuated.sort_unstable();
        assert_eq!(evacuated, vec![1, 3, 5], "board 0 held the odd ids");
        assert_eq!(report.summary.lost_jobs, 0);
        tick.placements
            .first()
            .expect("board 1 has headroom for at least one evacuee")
            .0
    };
    assert_eq!(first_relocation(&run(EvacOrder::TenantDeficitFirst)), 5);
    assert_eq!(first_relocation(&run(EvacOrder::HeaviestFirst)), 3);
}
