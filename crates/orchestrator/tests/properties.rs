//! Property-based tests over the fleet-orchestration control plane.

use omniboost_hw::AnalyticModel;
use omniboost_models::{
    ArrivalProcess, ArrivalTrace, FleetEvent, FleetScript, FleetScriptConfig, FleetTraceEvent,
    JobEvent, TraceConfig,
};
use omniboost_orchestrator::{
    BoardProfile, FleetSpec, OrchestratorConfig, OrchestratorReport, OrchestratorSim,
    RebalanceConfig,
};
use omniboost_serve::{OnlineConfig, SearchBudget};
use proptest::prelude::*;

const HORIZON_MS: u64 = 30_000;

fn quick_online() -> OnlineConfig {
    OnlineConfig {
        cold_budget: SearchBudget::with_iterations(50),
        warm_budget: SearchBudget::with_iterations(20),
        ..OnlineConfig::default()
    }
}

fn trace_config() -> TraceConfig {
    TraceConfig {
        horizon_ms: HORIZON_MS,
        mean_lifetime_ms: 9_000.0,
        ..TraceConfig::default()
    }
}

fn arb_process() -> impl Strategy<Value = ArrivalProcess> {
    proptest::sample::select(vec![
        ArrivalProcess::Poisson { rate_per_s: 0.9 },
        ArrivalProcess::Bursty {
            on_rate_per_s: 1.8,
            on_ms: 5_000,
            off_ms: 6_000,
        },
    ])
}

fn spec() -> FleetSpec {
    FleetSpec::heterogeneous(vec![
        BoardProfile::hikey970(),
        BoardProfile::hikey970(),
        BoardProfile::hikey970_lite(),
    ])
}

fn script(seed: u64) -> FleetScript {
    FleetScript::generate(
        &FleetScriptConfig {
            horizon_ms: HORIZON_MS,
            initial_boards: 3,
            join_profiles: 2,
            mean_fail_interval_ms: 12_000.0,
            mean_drain_interval_ms: 20_000.0,
            mean_join_interval_ms: 15_000.0,
        },
        seed,
    )
}

fn run(process: ArrivalProcess, seed: u64, config: OrchestratorConfig) -> OrchestratorReport {
    let trace = ArrivalTrace::generate(process, &trace_config(), seed);
    let script = script(seed ^ 0xF1EE7);
    let mut sim = OrchestratorSim::new(spec(), config, AnalyticModel::new);
    sim.run(&trace, &script, HORIZON_MS)
}

fn config(rebalance: bool) -> OrchestratorConfig {
    OrchestratorConfig {
        online: quick_online(),
        rebalance: rebalance.then_some(RebalanceConfig {
            period_ms: 3_000,
            min_imbalance: 0.1,
            min_gain_per_layer: 0.02,
            cooldown_periods: 1,
            max_moves_per_tick: 1,
        }),
        ..OrchestratorConfig::warm()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// (i) **Job conservation through failures, drains, joins and
    /// rebalancing**: at every tick the resident + queued job count
    /// equals the arrived-minus-departed count (nothing lost, nothing
    /// duplicated), per-event evacuation accounting balances, and the
    /// end-of-run `lost_jobs` audit is zero.
    #[test]
    fn evacuation_conserves_jobs(
        process in arb_process(),
        seed in 0u64..400,
        rebalance in proptest::sample::select(vec![true, false]),
    ) {
        let report = run(process, seed, config(rebalance));
        prop_assert_eq!(report.summary.lost_jobs, 0);
        let s = &report.summary;
        prop_assert_eq!(
            s.evacuated_jobs,
            s.evacuees_relocated_same_tick + s.evacuees_queued,
            "per-event evacuation accounting must balance"
        );
        let mut live = 0i64;
        for tick in &report.ticks {
            for fe in &tick.fleet_events {
                prop_assert_eq!(
                    fe.evacuated.len(),
                    fe.relocated + fe.queued,
                    "evacuees must be re-placed or queued"
                );
            }
            for e in &tick.events {
                match e {
                    JobEvent::Arrive(_) => live += 1,
                    JobEvent::Depart { .. } => live -= 1,
                }
            }
            let resident: usize = tick.board_jobs.iter().sum();
            prop_assert_eq!(
                (resident + tick.queue_depth) as i64,
                live,
                "at {} ms: {} resident + {} queued != {} live",
                tick.at_ms, resident, tick.queue_depth, live
            );
        }
    }

    /// (ii) **Rebalancing never violates admission**: every board stays
    /// within its own profile's concurrent-DNN cap at every tick (the
    /// heterogeneous fleet has different caps per slot), failed boards
    /// hold zero jobs, and every accepted move priced a positive gain.
    #[test]
    fn rebalancing_respects_admission_and_prices_gains(
        process in arb_process(),
        seed in 0u64..400,
    ) {
        let report = run(process, seed, config(true));
        // Slot caps: the three initial profiles, then joins in event
        // order resolved against the spec's join pool.
        let spec = spec();
        let mut caps: Vec<usize> = spec
            .initial
            .iter()
            .map(|p| p.board.max_concurrent_dnns)
            .collect();
        let mut dead: Vec<usize> = Vec::new();
        for tick in &report.ticks {
            for fe in &tick.fleet_events {
                match fe.event {
                    FleetEvent::BoardJoin { profile } => {
                        if let Some(slot) = fe.slot {
                            prop_assert_eq!(slot, caps.len(), "joins append");
                            let p = &spec.join_profiles[profile % spec.join_profiles.len()];
                            caps.push(p.board.max_concurrent_dnns);
                        }
                    }
                    FleetEvent::BoardFail { .. } | FleetEvent::BoardDrain { .. } => {
                        if let Some(slot) = fe.slot {
                            dead.push(slot);
                        }
                    }
                }
            }
            for (slot, jobs) in tick.board_jobs.iter().enumerate() {
                prop_assert!(
                    *jobs <= caps[slot],
                    "slot {slot} over its cap at {} ms: {jobs} > {}",
                    tick.at_ms, caps[slot]
                );
                if dead.contains(&slot) {
                    prop_assert_eq!(*jobs, 0usize, "dead board holding jobs");
                }
            }
            for mv in &tick.rebalances {
                prop_assert!(mv.gain_tps > 0.0, "move accepted without gain");
                prop_assert!(!dead.contains(&mv.to), "move onto a dead board");
                prop_assert!(mv.from != mv.to);
            }
        }
    }

    /// (iii) **Orchestrated traces are bit-for-bit deterministic per
    /// seed**: two fresh control planes produce identical digests, and
    /// a different seed produces different traffic.
    #[test]
    fn orchestrated_replay_is_deterministic_per_seed(
        process in arb_process(),
        seed in 0u64..400,
        rebalance in proptest::sample::select(vec![true, false]),
    ) {
        let a = run(process, seed, config(rebalance));
        let b = run(process, seed, config(rebalance));
        prop_assert_eq!(a.digest(), b.digest());
        prop_assert_eq!(a.ticks.len(), b.ticks.len());
        prop_assert_eq!(a.summary.mean_aggregate_tps, b.summary.mean_aggregate_tps);
        prop_assert_eq!(a.summary.rebalance_moves, b.summary.rebalance_moves);
        let c = run(process, seed + 1000, config(rebalance));
        prop_assert_ne!(a.digest(), c.digest());
    }
}

/// A deterministic board failure mid-trace: the evacuation path must
/// fire, recover every job, and report evacuation latency.
#[test]
fn board_failure_evacuates_and_reports_latency() {
    let trace = ArrivalTrace::generate(
        ArrivalProcess::Poisson { rate_per_s: 0.8 },
        &TraceConfig {
            mean_lifetime_ms: 20_000.0,
            ..trace_config()
        },
        11,
    );
    let script = FleetScript::new(vec![FleetTraceEvent {
        at_ms: HORIZON_MS / 2,
        event: FleetEvent::BoardFail { board: 0 },
    }]);
    let mut sim = OrchestratorSim::new(
        FleetSpec::homogeneous(2, BoardProfile::hikey970()),
        config(false),
        AnalyticModel::new,
    );
    let report = sim.run(&trace, &script, HORIZON_MS);
    assert_eq!(report.summary.board_failures, 1);
    assert!(report.summary.evacuated_jobs > 0, "board 0 should be busy");
    assert_eq!(report.summary.lost_jobs, 0);
    assert_eq!(
        report.summary.evacuation_wait.count + report.summary.evacuees_still_queued,
        report.summary.evacuated_jobs,
        "every evacuee has either a latency sample or is still waiting"
    );
    // The failed board never serves again.
    let fail_tick = report
        .ticks
        .iter()
        .position(|t| !t.fleet_events.is_empty())
        .unwrap();
    for tick in &report.ticks[fail_tick..] {
        assert_eq!(tick.board_jobs[0], 0);
        assert!(tick.active_boards == 1);
    }
}

/// A joined board becomes a placement target: with one saturated board
/// and a queue, a join must drain waiting jobs onto the new board.
#[test]
fn board_join_drains_the_queue() {
    // Saturate a single board: heavy steady arrivals, long lifetimes.
    let trace = ArrivalTrace::generate(
        ArrivalProcess::Poisson { rate_per_s: 1.2 },
        &TraceConfig {
            mean_lifetime_ms: 60_000.0,
            ..trace_config()
        },
        3,
    );
    let script = FleetScript::new(vec![FleetTraceEvent {
        at_ms: 20_000,
        event: FleetEvent::BoardJoin { profile: 0 },
    }]);
    let mut sim = OrchestratorSim::new(
        FleetSpec::homogeneous(1, BoardProfile::hikey970()),
        config(false),
        AnalyticModel::new,
    );
    let report = sim.run(&trace, &script, HORIZON_MS);
    assert_eq!(report.summary.board_joins, 1);
    let join_tick = report
        .ticks
        .iter()
        .find(|t| !t.fleet_events.is_empty())
        .expect("join tick recorded");
    assert!(
        !join_tick.placements.is_empty(),
        "the join should immediately drain queued jobs"
    );
    assert_eq!(join_tick.board_jobs.len(), 2);
    assert!(join_tick.board_jobs[1] > 0, "new board took jobs");
}
