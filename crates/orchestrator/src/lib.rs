//! # omniboost-orchestrator
//!
//! The fleet-orchestration control plane above `omniboost-serve`: where
//! the serving runtime schedules jobs **within** a fixed fleet, this
//! crate owns the fleet itself.
//!
//! * **Heterogeneous fleets** ([`FleetSpec`], [`BoardProfile`]) — mix
//!   full and degraded board profiles (e.g. [`omniboost_hw::Board::hikey970`]
//!   next to [`omniboost_hw::Board::hikey970_lite`]); placement compares
//!   true throughput headroom because load scores normalize by each
//!   board's own peak compute, and evaluation caches persist **per
//!   profile** (`CacheArchive` segments keyed on the board fingerprint).
//! * **Lifecycle events** ([`omniboost_models::FleetEvent`]) — seeded
//!   scripts of board failures, graceful drains and joins interleave
//!   with the arrival trace. On fail/drain every resident job is
//!   **evacuated** through the admission-gated placement path (re-placed
//!   now or FIFO-queued — never silently lost; the conservation
//!   invariant is proptested), and evacuation latency is a first-class
//!   metric. Joined boards immediately serve placements, queue drains
//!   and rebalancing.
//! * **Partial failures** — `BoardDegrade` swaps a board to a weaker
//!   profile from [`FleetSpec::degrade_profiles`] **in place**:
//!   residents the weaker profile still admits stay put and re-price on
//!   the new hardware (migrating only when the priced gain clears the
//!   rebalancer's bar), only the overflow evicts. `BoardRecover`
//!   restores the original hardware, and flapped/recovered/degraded
//!   boards **warm-boot** by preloading the run's `CacheArchive`
//!   segment matching their fingerprint. [`EvacOrder`] adds
//!   `TenantDeficitFirst` re-placement for the least-served tenant.
//! * **Migration-costed rebalancing** ([`RebalanceConfig`]) — a
//!   periodic step proposes moving the newest job from the most-loaded
//!   board to the least-loaded one, prices both sides with warm-started
//!   speculative rescheduling ([`omniboost::Runtime::run_speculative`] —
//!   the decision memo is never polluted by rejected proposals), and
//!   commits only when the fleet-level throughput gain exceeds a
//!   configurable multiple of the migrated-layer count. Imbalance
//!   thresholds and a post-move cooldown keep the fleet from thrashing.
//! * **Tenant fairness** — per-tenant throughput/queue-wait aggregation
//!   ([`omniboost_serve::TenantSummary`]) plus the
//!   [`omniboost_serve::PlacementPolicy::FairShare`] policy, which
//!   reserves the emptiest board for tenants below their fair share of
//!   attained throughput.
//!
//! See `examples/fleet_orchestration.rs` for a walkthrough and
//! `crates/bench/benches/fleet.rs` for the measured acceptance bars
//! (rebalance recovery, zero-loss failure handling, fairness ratio).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cells;
mod rebalance;
mod sim;
mod spec;

pub use cells::{CellConfig, ShardedRebalancer};
pub use rebalance::{RebalanceConfig, RebalanceMove, RebalanceTick, Rebalancer};
pub use sim::{
    EvacOrder, FleetEventRecord, OrchestratorConfig, OrchestratorReport, OrchestratorSim,
    OrchestratorSummary, OrchestratorTick,
};
pub use spec::{BoardProfile, FleetSpec};

// One import path for orchestrated-serving users.
pub use omniboost_models::{
    ArrivalProcess, ArrivalTrace, FleetEvent, FleetScript, FleetScriptConfig, FleetTraceEvent,
    TraceConfig,
};
pub use omniboost_serve::{
    tenant_tps_ratio, AdmissionPolicy, Mempool, OnlineConfig, PlacementPolicy, QueueOrder,
    RejectReason, ReschedulePolicy, SloClass, SloSummary, TenantSummary,
};
// Observability handle, re-exported so orchestrator users can inject a
// recorder ([`OrchestratorSim::set_telemetry`]) without a direct
// dependency edge on the telemetry crate.
pub use omniboost_telemetry::{LogHistogram, Telemetry};
