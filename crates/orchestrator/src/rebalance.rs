//! Migration-costed, hysteresis-guarded job rebalancing between boards.
//!
//! Jobs admitted to a board used to stay pinned there for life; under
//! skewed departures one board idles while another queues. The
//! rebalancer periodically proposes moving the newest job from the
//! most-loaded board to the least-loaded one and **prices the move
//! before committing**: both sides are re-scheduled speculatively
//! ([`omniboost::Runtime::run_speculative`] — warm-started, memo
//! untouched), and the move happens only when the fleet-level
//! throughput gain pays for the layers that would migrate. Three
//! hysteresis guards keep the fleet from thrashing: a minimum load
//! imbalance before anything is proposed, a per-layer gain floor, and a
//! cooldown after every accepted move.

use omniboost::PreviousDeployment;
use omniboost_hw::{Mapping, ThroughputModel, ThroughputReport};
use omniboost_serve::{BoardSlot, Fleet, WarmHint};

/// Knobs of the periodic rebalance step.
#[derive(Debug, Clone, PartialEq)]
pub struct RebalanceConfig {
    /// Simulated time between rebalance evaluations.
    pub period_ms: u64,
    /// Minimum *relative* load imbalance before a move is proposed: the
    /// receiver's load score must sit below `(1 - min_imbalance)` of
    /// the donor's. 0 proposes on any difference; 0.25 (default) wants
    /// a quarter of the donor's load to be missing on the receiver.
    pub min_imbalance: f64,
    /// Fleet-level throughput gain (inferences/s) every migrated layer
    /// must buy — the configurable multiple of the
    /// [`Mapping::migrated_layers`] cost. The moved job's own layers
    /// count too (its weights cross boards).
    pub min_gain_per_layer: f64,
    /// Rebalance periods skipped after an accepted move.
    pub cooldown_periods: u32,
    /// Accepted moves allowed per rebalance tick.
    pub max_moves_per_tick: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        Self {
            period_ms: 2_000,
            min_imbalance: 0.25,
            min_gain_per_layer: 0.05,
            cooldown_periods: 1,
            max_moves_per_tick: 1,
        }
    }
}

/// One accepted rebalance move.
#[derive(Debug, Clone, PartialEq)]
pub struct RebalanceMove {
    /// Simulated time of the move.
    pub at_ms: u64,
    /// Donor slot index.
    pub from: usize,
    /// Receiver slot index.
    pub to: usize,
    /// The moved job.
    pub job_id: u64,
    /// The moved job's tenant.
    pub tenant: u32,
    /// Fleet-level throughput gain the speculative scoring priced in.
    pub gain_tps: f64,
    /// Layers whose device changed, **including** every layer of the
    /// moved job (its weights re-upload on the receiver).
    pub migrated_layers: usize,
}

/// What one rebalance tick did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RebalanceTick {
    /// Moves accepted and committed.
    pub moves: Vec<RebalanceMove>,
    /// Proposals scored but rejected by the migration-cost gate.
    pub rejected: usize,
    /// Whether the tick was skipped by the cooldown guard.
    pub cooled_down: bool,
}

/// The rebalancer's cross-tick state (cooldown counter).
#[derive(Debug, Default)]
pub struct Rebalancer {
    cooldown: u32,
    /// Set when the last proposal was scored and the gate turned it
    /// down (vs. finding nothing to propose at all).
    last_proposal_rejected: bool,
}

/// A speculative single-board verdict: the mapping/report the board
/// would run, plus migration and accounting.
struct SideScore {
    mapping: Option<Mapping>,
    report: Option<ThroughputReport>,
    tps: f64,
    migrated_layers: usize,
}

impl Rebalancer {
    /// A fresh rebalancer (no cooldown pending).
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs one rebalance tick over the fleet. All dirty boards must be
    /// flushed first — proposals are priced against current deployments.
    pub fn tick<M: ThroughputModel + Sync>(
        &mut self,
        fleet: &mut Fleet<M>,
        config: &RebalanceConfig,
        at_ms: u64,
    ) -> RebalanceTick {
        let mut out = RebalanceTick::default();
        if self.cooldown > 0 {
            self.cooldown -= 1;
            out.cooled_down = true;
            return out;
        }
        for _ in 0..config.max_moves_per_tick {
            match self.try_one_move(fleet, config, at_ms) {
                Some(mv) => out.moves.push(mv),
                None => {
                    out.rejected += usize::from(self.last_proposal_rejected);
                    break;
                }
            }
        }
        if !out.moves.is_empty() {
            self.cooldown = config.cooldown_periods;
        }
        out
    }

    fn try_one_move<M: ThroughputModel + Sync>(
        &mut self,
        fleet: &mut Fleet<M>,
        config: &RebalanceConfig,
        at_ms: u64,
    ) -> Option<RebalanceMove> {
        self.last_proposal_rejected = false;
        // Donor: the most-loaded active board with jobs; receiver: the
        // least-loaded active board. Ties break on the lowest index.
        let donor = fleet
            .slots()
            .iter()
            .filter(|s| s.active && !s.jobs.is_empty())
            .map(|s| (s.index, s.load_score()))
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))?;
        let receiver = fleet
            .slots()
            .iter()
            .filter(|s| s.active && s.index != donor.0)
            .map(|s| (s.index, s.load_score()))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))?;
        // Hysteresis guard 1: meaningful imbalance only.
        if receiver.1 > donor.1 * (1.0 - config.min_imbalance) {
            return None;
        }
        let (from, to) = (donor.0, receiver.0);
        // Candidate: the newest job on the donor the receiver admits.
        let job_id = {
            let (donor_slot, recv_slot) = two_slots(fleet, from, to);
            donor_slot
                .jobs
                .iter()
                .zip(&donor_slot.models)
                .rev()
                .find(|(_, model)| recv_slot.admits(model))
                .map(|(job, _)| job.id)?
        };
        let (gain, migrated, donor_score, recv_score) = {
            let (donor_slot, recv_slot) = two_slots(fleet, from, to);
            let before = donor_slot.throughput() + recv_slot.throughput();
            let moved_layers = {
                let i = donor_slot
                    .jobs
                    .iter()
                    .position(|j| j.id == job_id)
                    .expect("candidate resident");
                donor_slot.models[i].num_layers()
            };
            let donor_score = speculate_without(donor_slot, job_id)?;
            let recv_score = speculate_with(recv_slot, donor_slot, job_id)?;
            let gain = donor_score.tps + recv_score.tps - before;
            let migrated = donor_score.migrated_layers + recv_score.migrated_layers + moved_layers;
            (gain, migrated, donor_score, recv_score)
        };
        // Hysteresis guard 2: the gain must pay for the churn.
        if gain <= config.min_gain_per_layer * migrated as f64 {
            self.last_proposal_rejected = true;
            return None;
        }
        // Commit: move the job and install the speculatively scored
        // deployments (they ARE what each board will run — re-searching
        // in the flush path would both double the work and risk a
        // different answer than the one the gate priced).
        let tenant;
        {
            let (donor_slot, recv_slot) = two_slots(fleet, from, to);
            let (job, model) = donor_slot.take_job(job_id).expect("candidate resident");
            tenant = job.tenant;
            recv_slot.push_job(job, model);
            match (donor_score.mapping, donor_score.report) {
                (Some(mapping), Some(report)) => donor_slot.install_deployment(mapping, report),
                _ => {
                    donor_slot.evacuate();
                }
            }
            recv_slot.install_deployment(
                recv_score.mapping.expect("receiver gained a job"),
                recv_score.report.expect("receiver gained a job"),
            );
        }
        Some(RebalanceMove {
            at_ms,
            from,
            to,
            job_id,
            tenant,
            gain_tps: gain,
            migrated_layers: migrated,
        })
    }
}

/// Simultaneous mutable access to two distinct slots.
fn two_slots<M: ThroughputModel + Sync>(
    fleet: &mut Fleet<M>,
    a: usize,
    b: usize,
) -> (&mut BoardSlot<M>, &mut BoardSlot<M>) {
    assert_ne!(a, b, "donor and receiver must differ");
    let slots = fleet.slots_mut();
    if a < b {
        let (lo, hi) = slots.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = slots.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

/// Prices the donor side: the board without `job_id`, warm-started from
/// the surviving rows of its current deployment.
fn speculate_without<M: ThroughputModel + Sync>(
    slot: &mut BoardSlot<M>,
    job_id: u64,
) -> Option<SideScore> {
    let removed = slot.jobs.iter().position(|j| j.id == job_id)?;
    if slot.jobs.len() == 1 {
        // The donor goes idle: nothing to search, nothing deployed.
        return Some(SideScore {
            mapping: None,
            report: None,
            tps: 0.0,
            migrated_layers: 0,
        });
    }
    let models: Vec<_> = slot
        .models
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != removed)
        .map(|(_, m)| m.clone())
        .collect();
    let workload = omniboost_hw::Workload::new(models);
    let mapping = slot.mapping.as_ref()?;
    // Remaining job i pairs with its previous row; all rows carried.
    let pairing: Vec<Option<usize>> = (0..slot.jobs.len())
        .filter(|i| *i != removed)
        .map(|i| {
            slot.deployed_jobs
                .iter()
                .position(|p| p.id == slot.jobs[i].id)
        })
        .collect();
    let rows: Vec<Vec<_>> = pairing
        .iter()
        .map(|p| Some(mapping.assignments()[(*p)?].clone()))
        .collect::<Option<Vec<_>>>()?;
    let carried = Mapping::new(rows);
    slot.scheduler.set_warm_hint(WarmHint {
        carried,
        decided: workload.len(),
        release: None,
    });
    slot.scheduler.speculate_next();
    let previous = slot.mapping.clone()?;
    let outcome = slot
        .runtime
        .run_speculative(
            &mut slot.scheduler,
            &workload,
            Some(PreviousDeployment {
                mapping: &previous,
                pairing: &pairing,
            }),
        )
        .ok()?;
    slot.scheduler.clear_hint();
    Some(SideScore {
        tps: outcome.report.per_dnn.iter().sum(),
        migrated_layers: outcome.migrated_layers.unwrap_or(0),
        mapping: Some(outcome.mapping),
        report: Some(outcome.report),
    })
}

/// Prices the receiver side: the board plus the donor's `job_id`
/// appended, warm-started from the receiver's current deployment.
fn speculate_with<M: ThroughputModel + Sync>(
    slot: &mut BoardSlot<M>,
    donor: &BoardSlot<M>,
    job_id: u64,
) -> Option<SideScore> {
    let moved = donor.jobs.iter().position(|j| j.id == job_id)?;
    let mut models: Vec<_> = slot.models.to_vec();
    models.push(donor.models[moved].clone());
    let workload = omniboost_hw::Workload::new(models);
    let mut pairing: Vec<Option<usize>> = (0..slot.jobs.len())
        .map(|i| {
            slot.deployed_jobs
                .iter()
                .position(|p| p.id == slot.jobs[i].id)
        })
        .collect();
    pairing.push(None); // the arriving job has nothing to migrate here
    if let Some(mapping) = &slot.mapping {
        let rows: Option<Vec<Vec<_>>> = pairing[..slot.jobs.len()]
            .iter()
            .map(|p| Some(mapping.assignments()[(*p)?].clone()))
            .collect();
        if let Some(rows) = rows {
            slot.scheduler.set_warm_hint(WarmHint {
                carried: Mapping::new(rows),
                decided: slot.jobs.len(),
                release: None,
            });
        }
    }
    let previous = slot.mapping.clone();
    let context = previous.as_ref().map(|mapping| PreviousDeployment {
        mapping,
        pairing: &pairing,
    });
    slot.scheduler.speculate_next();
    let outcome = slot
        .runtime
        .run_speculative(&mut slot.scheduler, &workload, context)
        .ok()?;
    slot.scheduler.clear_hint();
    Some(SideScore {
        tps: outcome.report.per_dnn.iter().sum(),
        migrated_layers: outcome.migrated_layers.unwrap_or(0),
        mapping: Some(outcome.mapping),
        report: Some(outcome.report),
    })
}
