//! Migration-costed, hysteresis-guarded job rebalancing between boards.
//!
//! Jobs admitted to a board used to stay pinned there for life; under
//! skewed departures one board idles while another queues. The
//! rebalancer periodically drains the **top-k most-loaded boards**: it
//! plans a *set* of moves (the newest admissible job of each hot donor,
//! routed to whichever of the k least-loaded receivers it loads the
//! least) and **prices the set as a unit before committing**: every
//! affected side is re-scheduled speculatively
//! ([`omniboost::Runtime::run_speculative`] — warm-started, memo
//! untouched), and the set commits only when the fleet-level throughput
//! gain pays for the layers that would migrate. A rejected set falls
//! back to pricing just its first move, so a bad bundle never blocks an
//! individually good move. Three hysteresis guards keep the fleet from
//! thrashing: a minimum load imbalance before anything is proposed, a
//! per-layer gain floor, and a cooldown after every accepted set.
//!
//! Donor/receiver selection reads [`Fleet::most_loaded`] /
//! [`Fleet::least_loaded`] off the load index (O(k log n)); the sharded
//! driver (`crate::cells`) instead calls [`Rebalancer::tick_cell`] on a
//! bounded slice, where a linear sort is cheaper than index surgery.

use omniboost::PreviousDeployment;
use omniboost_hw::{Mapping, ThroughputModel, ThroughputReport};
use omniboost_models::DnnModel;
use omniboost_serve::{BoardSlot, Fleet, WarmHint};

/// Knobs of the periodic rebalance step.
#[derive(Debug, Clone, PartialEq)]
pub struct RebalanceConfig {
    /// Simulated time between rebalance evaluations.
    pub period_ms: u64,
    /// Minimum *relative* load imbalance before a move is proposed: the
    /// emptiest receiver's load score must sit below
    /// `(1 - min_imbalance)` of the hottest donor's. 0 proposes on any
    /// difference; 0.25 (default) wants a quarter of the donor's load
    /// to be missing on the receiver.
    pub min_imbalance: f64,
    /// Fleet-level throughput gain (inferences/s) every migrated layer
    /// must buy — the configurable multiple of the
    /// [`Mapping::migrated_layers`] cost. The moved jobs' own layers
    /// count too (their weights cross boards).
    pub min_gain_per_layer: f64,
    /// Rebalance periods skipped after an accepted move set.
    pub cooldown_periods: u32,
    /// Moves planned per rebalance tick (at most one per donor).
    pub max_moves_per_tick: usize,
    /// How many of the most-loaded boards are drained (and how many of
    /// the least-loaded are offered as receivers) per tick.
    pub top_k_boards: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        Self {
            period_ms: 2_000,
            min_imbalance: 0.25,
            min_gain_per_layer: 0.05,
            cooldown_periods: 1,
            max_moves_per_tick: 4,
            top_k_boards: 4,
        }
    }
}

/// One accepted rebalance move.
#[derive(Debug, Clone, PartialEq)]
pub struct RebalanceMove {
    /// Simulated time of the move.
    pub at_ms: u64,
    /// Donor slot index.
    pub from: usize,
    /// Receiver slot index.
    pub to: usize,
    /// The moved job.
    pub job_id: u64,
    /// The moved job's tenant.
    pub tenant: u32,
    /// This move's share of the set-level throughput gain the
    /// speculative scoring priced in (the set is accepted or rejected
    /// as a unit, so the gain is apportioned evenly across its moves).
    pub gain_tps: f64,
    /// This move's share of the set's migrated layers, **including**
    /// every layer of the moved jobs (their weights re-upload on the
    /// receivers). Shares sum exactly to the set total.
    pub migrated_layers: usize,
}

/// What one rebalance tick did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RebalanceTick {
    /// Moves accepted and committed.
    pub moves: Vec<RebalanceMove>,
    /// Proposals scored but rejected by the migration-cost gate.
    pub rejected: usize,
    /// Whether the tick was skipped by the cooldown guard.
    pub cooled_down: bool,
}

/// The rebalancer's cross-tick state (cooldown counter). The sharded
/// driver holds one per cell.
#[derive(Debug, Default)]
pub struct Rebalancer {
    cooldown: u32,
}

/// A speculative single-board verdict: the mapping/report the board
/// would run, plus migration and accounting.
struct SideScore {
    mapping: Option<Mapping>,
    report: Option<ThroughputReport>,
    tps: f64,
    migrated_layers: usize,
}

/// One planned (not yet priced) move: positions are into the slice
/// being balanced, the model is cloned at plan time so pricing and
/// commit never re-borrow the donor.
struct PlannedMove {
    donor_pos: usize,
    recv_pos: usize,
    job_id: u64,
    tenant: u32,
    moved_layers: usize,
    model: DnnModel,
}

/// A priced move set: the fleet-level gain, the total migration bill,
/// and the speculative deployments to install on commit.
struct PricedPlan {
    gain: f64,
    migrated: usize,
    donor_scores: Vec<(usize, SideScore)>,
    recv_scores: Vec<(usize, SideScore)>,
}

impl Rebalancer {
    /// A fresh rebalancer (no cooldown pending).
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs one rebalance tick over the whole fleet, reading donors and
    /// receivers off the load index. All dirty boards must be flushed
    /// first — proposals are priced against current deployments.
    pub fn tick<M: ThroughputModel + Sync>(
        &mut self,
        fleet: &mut Fleet<M>,
        config: &RebalanceConfig,
        at_ms: u64,
    ) -> RebalanceTick {
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return RebalanceTick {
                cooled_down: true,
                ..Default::default()
            };
        }
        let donors = fleet.most_loaded(config.top_k_boards);
        let donor_ids: Vec<usize> = donors.iter().map(|d| d.0).collect();
        let receivers = fleet.least_loaded(config.top_k_boards, &donor_ids);
        // The fleet's slice is indexed by slot index, so positions and
        // indices coincide here.
        let out = balance_slice(fleet.slots_mut(), &donors, &receivers, config, at_ms);
        for mv in &out.moves {
            fleet.reindex(mv.from);
            fleet.reindex(mv.to);
        }
        if !out.moves.is_empty() {
            self.cooldown = config.cooldown_periods;
        }
        out
    }

    /// Runs one rebalance tick over a bounded cell of the fleet (the
    /// sharded driver's per-cell step). Donors and receivers come from
    /// a linear sort of the cell — cells are small, so sorting beats
    /// maintaining per-cell indices. The caller must
    /// [`Fleet::reindex`] every move's `from`/`to` slot afterwards.
    pub fn tick_cell<M: ThroughputModel + Sync>(
        &mut self,
        cell: &mut [BoardSlot<M>],
        config: &RebalanceConfig,
        at_ms: u64,
    ) -> RebalanceTick {
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return RebalanceTick {
                cooled_down: true,
                ..Default::default()
            };
        }
        let mut donors: Vec<(usize, f64)> = cell
            .iter()
            .enumerate()
            .filter(|(_, s)| s.active && !s.jobs.is_empty())
            .map(|(p, s)| (p, s.load_score()))
            .collect();
        donors.sort_by(|a, b| {
            b.1.total_cmp(&a.1)
                .then(cell[a.0].index.cmp(&cell[b.0].index))
        });
        donors.truncate(config.top_k_boards);
        let mut receivers: Vec<(usize, f64)> = cell
            .iter()
            .enumerate()
            .filter(|(p, s)| s.active && !donors.iter().any(|d| d.0 == *p))
            .map(|(p, s)| (p, s.load_score()))
            .collect();
        receivers.sort_by(|a, b| {
            a.1.total_cmp(&b.1)
                .then(cell[a.0].index.cmp(&cell[b.0].index))
        });
        receivers.truncate(config.top_k_boards);
        let out = balance_slice(cell, &donors, &receivers, config, at_ms);
        if !out.moves.is_empty() {
            self.cooldown = config.cooldown_periods;
        }
        out
    }
}

/// Plans, prices and (when the gate passes) commits one move set over
/// `slots`. `donors` are `(position, load score)` hottest-first,
/// `receivers` coldest-first, positions into `slots`; the emitted
/// [`RebalanceMove`] rows carry the slots' stable global indices.
pub(crate) fn balance_slice<M: ThroughputModel + Sync>(
    slots: &mut [BoardSlot<M>],
    donors: &[(usize, f64)],
    receivers: &[(usize, f64)],
    config: &RebalanceConfig,
    at_ms: u64,
) -> RebalanceTick {
    let mut out = RebalanceTick::default();
    let (Some(hottest), Some(coldest)) = (donors.first(), receivers.first()) else {
        return out;
    };
    // Hysteresis guard 1: meaningful imbalance only.
    if coldest.1 > hottest.1 * (1.0 - config.min_imbalance) {
        return out;
    }
    // Plan: for each hot donor (at most one job each), the newest job
    // some receiver admits, routed to the receiver it loads the least —
    // tracked against *projected* receiver state so the set stays
    // admissible as a whole. A move may not load its receiver past the
    // donor's post-move score (that would just invert the imbalance).
    let mut plan: Vec<PlannedMove> = Vec::new();
    struct RecvState {
        pos: usize,
        jobs: usize,
        weight: u64,
        flops: u64,
    }
    let mut recv_state: Vec<RecvState> = receivers
        .iter()
        .map(|&(pos, _)| {
            let slot = &slots[pos];
            RecvState {
                pos,
                jobs: slot.jobs.len(),
                weight: slot.resident_weight_bytes(),
                flops: slot.resident_flops(),
            }
        })
        .collect();
    for &(donor_pos, _) in donors {
        if plan.len() >= config.max_moves_per_tick {
            break;
        }
        let donor = &slots[donor_pos];
        'candidates: for (job, model) in donor.jobs.iter().zip(&donor.models).rev() {
            let (mflops, mweight) = (model.total_flops(), model.total_weight_bytes());
            let donor_after = donor
                .board
                .load_score_flops(donor.resident_flops() - mflops);
            let mut best: Option<(usize, f64, usize)> = None;
            for (si, rs) in recv_state.iter().enumerate() {
                let recv = &slots[rs.pos];
                if recv
                    .board
                    .admit_totals(rs.jobs + 1, rs.weight + mweight)
                    .is_err()
                {
                    continue;
                }
                let post = recv.board.load_score_flops(rs.flops + mflops);
                if post > donor_after {
                    continue;
                }
                let better = best.as_ref().is_none_or(|&(_, bpost, bindex)| {
                    post.total_cmp(&bpost).then(recv.index.cmp(&bindex)).is_lt()
                });
                if better {
                    best = Some((si, post, recv.index));
                }
            }
            if let Some((si, _, _)) = best {
                let rs = &mut recv_state[si];
                rs.jobs += 1;
                rs.weight += mweight;
                rs.flops += mflops;
                plan.push(PlannedMove {
                    donor_pos,
                    recv_pos: rs.pos,
                    job_id: job.id,
                    tenant: job.tenant,
                    moved_layers: model.num_layers(),
                    model: model.clone(),
                });
                break 'candidates;
            }
        }
    }
    if plan.is_empty() {
        return out;
    }
    // Hysteresis guard 2: the set's gain must pay for its churn. A
    // rejected set retries as just its first move before giving up —
    // bundling must never suppress a move that pays on its own.
    let mut priced = match price_plan(slots, &plan) {
        Some(p) => p,
        None => return out,
    };
    if priced.gain <= config.min_gain_per_layer * priced.migrated as f64 {
        out.rejected += 1;
        if plan.len() <= 1 {
            return out;
        }
        plan.truncate(1);
        priced = match price_plan(slots, &plan) {
            Some(p) => p,
            None => return out,
        };
        if priced.gain <= config.min_gain_per_layer * priced.migrated as f64 {
            out.rejected += 1;
            return out;
        }
    }
    // Commit: move the jobs, then install the speculatively scored
    // deployments (they ARE what each board will run — re-searching in
    // the flush path would both double the work and risk a different
    // answer than the one the gate priced).
    for mv in &plan {
        let (donor, recv) = slot_pair(slots, mv.donor_pos, mv.recv_pos);
        let (job, model) = donor.take_job(mv.job_id).expect("candidate resident");
        recv.push_job(job, model);
    }
    for (pos, score) in priced.donor_scores {
        match (score.mapping, score.report) {
            (Some(mapping), Some(report)) => slots[pos].install_deployment(mapping, report),
            _ => {
                slots[pos].evacuate();
            }
        }
    }
    for (pos, score) in priced.recv_scores {
        slots[pos].install_deployment(
            score.mapping.expect("receiver gained jobs"),
            score.report.expect("receiver gained jobs"),
        );
    }
    let n = plan.len();
    let per_gain = priced.gain / n as f64;
    let (base, extra) = (priced.migrated / n, priced.migrated % n);
    out.moves = plan
        .iter()
        .enumerate()
        .map(|(i, mv)| RebalanceMove {
            at_ms,
            from: slots[mv.donor_pos].index,
            to: slots[mv.recv_pos].index,
            job_id: mv.job_id,
            tenant: mv.tenant,
            gain_tps: per_gain,
            migrated_layers: base + usize::from(i < extra),
        })
        .collect();
    out
}

/// Prices a move set: speculatively reschedules every affected donor
/// (minus its moved job) and receiver (plus its gained jobs), summing
/// throughput deltas and migration bills across the whole set.
fn price_plan<M: ThroughputModel + Sync>(
    slots: &mut [BoardSlot<M>],
    plan: &[PlannedMove],
) -> Option<PricedPlan> {
    let mut donor_positions: Vec<usize> = plan.iter().map(|m| m.donor_pos).collect();
    donor_positions.sort_unstable();
    donor_positions.dedup();
    let mut recv_positions: Vec<usize> = plan.iter().map(|m| m.recv_pos).collect();
    recv_positions.sort_unstable();
    recv_positions.dedup();
    let before: f64 = donor_positions
        .iter()
        .chain(&recv_positions)
        .map(|&p| slots[p].throughput())
        .sum();
    let mut migrated: usize = plan.iter().map(|m| m.moved_layers).sum();
    let mut after = 0.0;
    let mut donor_scores = Vec::with_capacity(donor_positions.len());
    for &pos in &donor_positions {
        // Planning takes at most one job per donor.
        let job_id = plan
            .iter()
            .find(|m| m.donor_pos == pos)
            .expect("position from plan")
            .job_id;
        let score = speculate_without(&mut slots[pos], job_id)?;
        after += score.tps;
        migrated += score.migrated_layers;
        donor_scores.push((pos, score));
    }
    let mut recv_scores = Vec::with_capacity(recv_positions.len());
    for &pos in &recv_positions {
        let added: Vec<DnnModel> = plan
            .iter()
            .filter(|m| m.recv_pos == pos)
            .map(|m| m.model.clone())
            .collect();
        let score = speculate_with_many(&mut slots[pos], &added)?;
        after += score.tps;
        migrated += score.migrated_layers;
        recv_scores.push((pos, score));
    }
    Some(PricedPlan {
        gain: after - before,
        migrated,
        donor_scores,
        recv_scores,
    })
}

/// Simultaneous mutable access to two distinct positions of a slice.
fn slot_pair<M>(
    slots: &mut [BoardSlot<M>],
    a: usize,
    b: usize,
) -> (&mut BoardSlot<M>, &mut BoardSlot<M>) {
    assert_ne!(a, b, "donor and receiver must differ");
    if a < b {
        let (lo, hi) = slots.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = slots.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

/// Prices the donor side: the board without `job_id`, warm-started from
/// the surviving rows of its current deployment.
fn speculate_without<M: ThroughputModel + Sync>(
    slot: &mut BoardSlot<M>,
    job_id: u64,
) -> Option<SideScore> {
    let removed = slot.jobs.iter().position(|j| j.id == job_id)?;
    if slot.jobs.len() == 1 {
        // The donor goes idle: nothing to search, nothing deployed.
        return Some(SideScore {
            mapping: None,
            report: None,
            tps: 0.0,
            migrated_layers: 0,
        });
    }
    let models: Vec<_> = slot
        .models
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != removed)
        .map(|(_, m)| m.clone())
        .collect();
    let workload = omniboost_hw::Workload::new(models);
    let mapping = slot.mapping.as_ref()?;
    // Remaining job i pairs with its previous row; all rows carried.
    let pairing: Vec<Option<usize>> = (0..slot.jobs.len())
        .filter(|i| *i != removed)
        .map(|i| {
            slot.deployed_jobs
                .iter()
                .position(|p| p.id == slot.jobs[i].id)
        })
        .collect();
    let rows: Vec<Vec<_>> = pairing
        .iter()
        .map(|p| Some(mapping.assignments()[(*p)?].clone()))
        .collect::<Option<Vec<_>>>()?;
    let carried = Mapping::new(rows);
    slot.scheduler.set_warm_hint(WarmHint {
        carried,
        decided: workload.len(),
        release: None,
    });
    slot.scheduler.speculate_next();
    let previous = slot.mapping.clone()?;
    let outcome = slot
        .runtime
        .run_speculative(
            &mut slot.scheduler,
            &workload,
            Some(PreviousDeployment {
                mapping: &previous,
                pairing: &pairing,
            }),
        )
        .ok()?;
    slot.scheduler.clear_hint();
    Some(SideScore {
        tps: outcome.report.per_dnn.iter().sum(),
        migrated_layers: outcome.migrated_layers.unwrap_or(0),
        mapping: Some(outcome.mapping),
        report: Some(outcome.report),
    })
}

/// Prices the receiver side: the board plus `added` models appended (in
/// plan order), warm-started from the receiver's current deployment.
fn speculate_with_many<M: ThroughputModel + Sync>(
    slot: &mut BoardSlot<M>,
    added: &[DnnModel],
) -> Option<SideScore> {
    let mut models: Vec<_> = slot.models.to_vec();
    models.extend(added.iter().cloned());
    let workload = omniboost_hw::Workload::new(models);
    let mut pairing: Vec<Option<usize>> = (0..slot.jobs.len())
        .map(|i| {
            slot.deployed_jobs
                .iter()
                .position(|p| p.id == slot.jobs[i].id)
        })
        .collect();
    // The arriving jobs have nothing to migrate here.
    pairing.extend(std::iter::repeat_n(None, added.len()));
    if let Some(mapping) = &slot.mapping {
        let rows: Option<Vec<Vec<_>>> = pairing[..slot.jobs.len()]
            .iter()
            .map(|p| Some(mapping.assignments()[(*p)?].clone()))
            .collect();
        if let Some(rows) = rows {
            slot.scheduler.set_warm_hint(WarmHint {
                carried: Mapping::new(rows),
                decided: slot.jobs.len(),
                release: None,
            });
        }
    }
    let previous = slot.mapping.clone();
    let context = previous.as_ref().map(|mapping| PreviousDeployment {
        mapping,
        pairing: &pairing,
    });
    slot.scheduler.speculate_next();
    let outcome = slot
        .runtime
        .run_speculative(&mut slot.scheduler, &workload, context)
        .ok()?;
    slot.scheduler.clear_hint();
    Some(SideScore {
        tps: outcome.report.per_dnn.iter().sum(),
        migrated_layers: outcome.migrated_layers.unwrap_or(0),
        mapping: Some(outcome.mapping),
        report: Some(outcome.report),
    })
}
