//! The orchestration event loop: one merged timeline of job events,
//! fleet-lifecycle events and periodic rebalance ticks, replayed
//! against a (possibly heterogeneous, possibly shrinking and growing)
//! fleet.

use crate::cells::{CellConfig, ShardedRebalancer};
use crate::rebalance::{balance_slice, RebalanceConfig, RebalanceMove, Rebalancer};
use crate::spec::FleetSpec;
use omniboost_estimator::CacheArchive;
use omniboost_hw::{Board, EvalCacheStats, Fnv1a, ThroughputModel};
use omniboost_models::{zoo, ArrivalTrace, FleetEvent, FleetScript, JobEvent, JobSpec};
use omniboost_serve::{
    AdmissionPolicy, BoardDecision, Fleet, LatencyStats, Mempool, OnlineConfig, OnlineScheduler,
    PlacementPolicy, ReschedulePolicy, SloAccumulator, SloSummary, SubmitOutcome,
    TenantAccumulator, TenantSummary,
};
use omniboost_telemetry::{LogHistogram, Telemetry};
use std::hash::Hasher;
use std::path::PathBuf;

/// In what order a failed/drained board's residents are re-placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvacOrder {
    /// Arrival order — the historical behaviour.
    Arrival,
    /// Heaviest model first (by per-inference FLOPs, ties on the lower
    /// job id): big jobs get first pick of scarce headroom, since a
    /// light job fits almost anywhere but a VGG-19 may only fit on the
    /// emptiest board. The default.
    #[default]
    HeaviestFirst,
    /// Most-deficient tenant first: evacuees rank ascending by their
    /// tenant's attained throughput **integral**
    /// ([`TenantAccumulator::attained_integral`] — inference-seconds
    /// delivered so far, 0 for tenants that never attained anything),
    /// so the tenant the fleet has served least gets first pick of the
    /// scarce post-failure headroom. Ties fall back to heaviest-first,
    /// then the lower job id, keeping the order fully deterministic.
    TenantDeficitFirst,
}

/// Full orchestrator configuration.
#[derive(Debug, Clone)]
pub struct OrchestratorConfig {
    /// Rescheduling policy of every board's scheduler.
    pub policy: ReschedulePolicy,
    /// Job placement policy across boards.
    pub placement: PlacementPolicy,
    /// Per-board online scheduler knobs.
    pub online: OnlineConfig,
    /// Whether per-board runtimes memoize decisions per workload mix.
    pub use_memo: bool,
    /// Persisted evaluation-cache archive: each board warm-loads its
    /// hardware profile's segment at startup; every profile's merged
    /// cache is written back at shutdown.
    pub cache_path: Option<PathBuf>,
    /// Periodic migration-costed rebalancing (`None` disables — the
    /// PR-4 behaviour where jobs stay pinned to their admission board).
    pub rebalance: Option<RebalanceConfig>,
    /// Sharded-cell rebalancing (`None` runs the single whole-fleet
    /// rebalancer; ignored when `rebalance` is `None`). At hundreds of
    /// boards cells bound each rebalance decision to a constant-size
    /// slice and parallelize across cells.
    pub cells: Option<CellConfig>,
    /// Admission-mempool knobs (validation, quotas, TTL, backoff, and
    /// the queue-drain ordering that used to be the standalone
    /// `queue_order` field).
    pub admission: AdmissionPolicy,
    /// Evacuation re-placement ordering on board failure/drain.
    pub evac_order: EvacOrder,
    /// A/B arm for the chaos bench: when `true`, a
    /// [`FleetEvent::BoardDegrade`] evacuates **every** resident job off
    /// the degraded board (like a failure, except the weakened board
    /// stays in rotation for later placements). The default `false`
    /// keeps the degrade-in-place behaviour — survivors re-price on the
    /// weakened hardware and migrate only when a priced rebalance move
    /// clears the migration-cost gate.
    pub degrade_evacuates_all: bool,
}

impl OrchestratorConfig {
    /// The production configuration: warm starts, decision memo,
    /// fair-share placement, rebalancing on.
    pub fn warm() -> Self {
        Self {
            policy: ReschedulePolicy::WarmStart,
            placement: PlacementPolicy::FairShare,
            online: OnlineConfig::default(),
            use_memo: true,
            cache_path: None,
            rebalance: Some(RebalanceConfig::default()),
            cells: None,
            admission: AdmissionPolicy::default(),
            evac_order: EvacOrder::HeaviestFirst,
            degrade_evacuates_all: false,
        }
    }

    /// [`OrchestratorConfig::warm`] with rebalancing disabled — the
    /// jobs-stay-pinned baseline every rebalance benchmark compares
    /// against.
    pub fn warm_pinned() -> Self {
        Self {
            rebalance: None,
            ..Self::warm()
        }
    }
}

/// What one fleet-lifecycle event did to the fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetEventRecord {
    /// The event as scripted.
    pub event: FleetEvent,
    /// Slot index affected (the failed/drained board, or the joined
    /// board's fresh index). `None` when the event was a no-op (dead
    /// target, empty join pool).
    pub slot: Option<usize>,
    /// Jobs evacuated off the board (fail/drain only), arrival order.
    pub evacuated: Vec<u64>,
    /// How many evacuees found a new board in the same tick.
    pub relocated: usize,
    /// How many evacuees had to queue.
    pub queued: usize,
}

/// Everything that happened at one orchestrated timestamp.
#[derive(Debug, Clone)]
pub struct OrchestratorTick {
    /// Timestamp (ms since trace start).
    pub at_ms: u64,
    /// Fleet-lifecycle events applied this tick (before job events).
    pub fleet_events: Vec<FleetEventRecord>,
    /// Trace job events processed this tick.
    pub events: Vec<JobEvent>,
    /// `(job id, board)` placements this tick (fresh arrivals, queue
    /// drains and evacuation re-placements).
    pub placements: Vec<(u64, usize)>,
    /// Job ids that had to queue.
    pub queued: Vec<u64>,
    /// Job ids the mempool rejected at submit (validation or tenant
    /// quota — empty under the default permissive policy).
    pub rejected: Vec<u64>,
    /// Queued job ids the mempool TTL-evicted this tick.
    pub expired: Vec<u64>,
    /// Per-board rescheduling outcomes.
    pub decisions: Vec<BoardDecision>,
    /// Rebalance moves accepted this tick.
    pub rebalances: Vec<RebalanceMove>,
    /// Waiting jobs after the tick.
    pub queue_depth: usize,
    /// Jobs resident per slot after the tick (deactivated slots stay in
    /// the vector at 0 — indices are stable).
    pub board_jobs: Vec<usize>,
    /// Boards in rotation after the tick.
    pub active_boards: usize,
    /// Fleet throughput after the tick (sum of per-job inf/s).
    pub aggregate_tps: f64,
}

/// Aggregates over a whole orchestrated run.
#[derive(Debug, Clone)]
pub struct OrchestratorSummary {
    /// Trace job events replayed.
    pub events: usize,
    /// Arrivals among them.
    pub arrivals: usize,
    /// Departures among them.
    pub departures: usize,
    /// Successful placements (arrivals, queue drains and evacuation
    /// re-placements all count).
    pub placements: usize,
    /// Board failures applied.
    pub board_failures: usize,
    /// Board drains applied.
    pub board_drains: usize,
    /// Boards joined.
    pub board_joins: usize,
    /// Boards degraded in place (profile swapped to a weaker one).
    pub board_degrades: usize,
    /// Degraded boards restored to their original profile.
    pub board_recovers: usize,
    /// Boards that booted **warm**: joins, degrades and recoveries whose
    /// fresh scheduler preloaded a non-empty evaluation-cache segment
    /// from the in-run archive (the flap warm-reboot path — a board
    /// that fails and rejoins finds the caches its profile archived
    /// before going down).
    pub warm_boots: usize,
    /// Evaluation-cache entries those warm boots preloaded, total.
    pub warm_boot_entries: usize,
    /// Jobs evicted off degraded boards because the weakened profile no
    /// longer admitted them (requeued through the evacuation path, so
    /// they also count toward [`OrchestratorSummary::evacuated_jobs`]).
    pub degrade_evictions: usize,
    /// Jobs evacuated off failing/draining/degrading boards.
    pub evacuated_jobs: usize,
    /// Evacuees re-placed within their failure tick.
    pub evacuees_relocated_same_tick: usize,
    /// Evacuees that had to queue.
    pub evacuees_queued: usize,
    /// **Evacuation latency** in simulated milliseconds: time from the
    /// board failure/drain to the evacuee landing on a new board
    /// (same-tick relocations contribute 0 ms). Evacuees still queued
    /// at the horizon are not samples; see
    /// [`OrchestratorSummary::evacuees_still_queued`].
    pub evacuation_wait: LatencyStats,
    /// Evacuees still waiting when the trace ended.
    pub evacuees_still_queued: usize,
    /// Jobs neither resident, nor queued, nor departed at the end —
    /// the conservation invariant demands **zero**, and the orchestrator
    /// proptests pin it there.
    pub lost_jobs: usize,
    /// Rebalance ticks evaluated.
    pub rebalance_ticks: usize,
    /// Moves accepted by the migration-cost gate.
    pub rebalance_moves: usize,
    /// Proposals scored and rejected by the gate.
    pub rebalance_rejected: usize,
    /// Total fleet-level throughput gain the accepted moves priced in.
    pub rebalance_gain_tps: f64,
    /// Layers migrated by accepted moves (including moved jobs' own).
    pub rebalance_migrated_layers: usize,
    /// Rescheduling decisions made (all boards, flush path).
    pub decisions: usize,
    /// Wall-clock decision latency over all flush decisions.
    pub decision: LatencyStats,
    /// Wall-clock latency of every placement *decision* (arrivals,
    /// queue drains, evacuation re-placements — including attempts that
    /// ended in the queue). Wall-clock, so excluded from
    /// [`OrchestratorReport::digest`]; the fleet-scale bench's p99 bar
    /// reads this.
    pub placement: LatencyStats,
    /// Migration churn of the flush path (layers moved).
    pub migrated_layers: usize,
    /// Deepest the queue ever got.
    pub peak_queue_depth: usize,
    /// Jobs still waiting when the trace ended.
    pub left_in_queue: usize,
    /// Jobs the mempool rejected at submit (validation + tenant quota).
    /// Rejected jobs are accounted — not lost — so they do not count
    /// toward [`OrchestratorSummary::lost_jobs`].
    pub rejected: usize,
    /// Queued jobs the mempool TTL-evicted before they ever placed.
    pub expired: usize,
    /// Per-SLO-class attainment (guaranteed floors, best-effort
    /// starvation).
    pub slo: SloSummary,
    /// Time-weighted mean fleet throughput over the horizon.
    pub mean_aggregate_tps: f64,
    /// Fraction of the horizon each slot served at least one job.
    pub board_utilization: Vec<f64>,
    /// Per-tenant aggregates, sorted by tenant id.
    pub tenants: Vec<TenantSummary>,
    /// Merged evaluation-cache counters across boards.
    pub eval_cache: EvalCacheStats,
    /// Entries warm-loaded from the cache archive at startup.
    pub cache_preloaded_entries: usize,
}

/// The record of one orchestrated run: per-tick detail plus aggregates.
#[derive(Debug, Clone)]
pub struct OrchestratorReport {
    /// Per-timestamp records, in replay order.
    pub ticks: Vec<OrchestratorTick>,
    /// Aggregates.
    pub summary: OrchestratorSummary,
}

impl OrchestratorReport {
    /// Deterministic digest of everything **except wall-clock decision
    /// latency**: replaying the same seeded trace + script through the
    /// same configuration must reproduce this bit-for-bit.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::default();
        let f = |h: &mut Fnv1a, v: f64| h.write(&v.to_bits().to_le_bytes());
        for tick in &self.ticks {
            h.write(&tick.at_ms.to_le_bytes());
            for fe in &tick.fleet_events {
                // Tag bytes 1–3 and their operand encoding predate the
                // chaos events and must not change: scripts without
                // degrade/recover events replay their pinned digests
                // verbatim. Degrade hashes a second operand (the
                // brown-out profile index).
                match fe.event {
                    FleetEvent::BoardFail { board } => {
                        h.write(&[1]);
                        h.write(&(board as u64).to_le_bytes());
                    }
                    FleetEvent::BoardDrain { board } => {
                        h.write(&[2]);
                        h.write(&(board as u64).to_le_bytes());
                    }
                    FleetEvent::BoardJoin { profile } => {
                        h.write(&[3]);
                        h.write(&(profile as u64).to_le_bytes());
                    }
                    FleetEvent::BoardDegrade { board, profile } => {
                        h.write(&[4]);
                        h.write(&(board as u64).to_le_bytes());
                        h.write(&(profile as u64).to_le_bytes());
                    }
                    FleetEvent::BoardRecover { board } => {
                        h.write(&[5]);
                        h.write(&(board as u64).to_le_bytes());
                    }
                }
                h.write(&(fe.slot.map_or(u64::MAX, |s| s as u64)).to_le_bytes());
                for id in &fe.evacuated {
                    h.write(&id.to_le_bytes());
                }
                h.write(&(fe.relocated as u64).to_le_bytes());
                h.write(&(fe.queued as u64).to_le_bytes());
            }
            for e in &tick.events {
                match e {
                    JobEvent::Arrive(j) => {
                        h.write(&[1]);
                        h.write(&j.id.to_le_bytes());
                        h.write(&(j.model.index() as u64).to_le_bytes());
                        h.write(&j.tenant.to_le_bytes());
                    }
                    JobEvent::Depart { job_id } => {
                        h.write(&[2]);
                        h.write(&job_id.to_le_bytes());
                    }
                }
            }
            for (id, board) in &tick.placements {
                h.write(&id.to_le_bytes());
                h.write(&(*board as u64).to_le_bytes());
            }
            for id in &tick.queued {
                h.write(&id.to_le_bytes());
            }
            // Rejections/expiries hash per id: empty vectors write no
            // bytes, so pre-mempool digests are preserved verbatim.
            for id in &tick.rejected {
                h.write(&[3]);
                h.write(&id.to_le_bytes());
            }
            for id in &tick.expired {
                h.write(&[4]);
                h.write(&id.to_le_bytes());
            }
            for d in &tick.decisions {
                h.write(&(d.board as u64).to_le_bytes());
                h.write(d.kind.label().as_bytes());
                h.write(&(d.migrated_layers as u64).to_le_bytes());
                h.write(&(d.jobs as u64).to_le_bytes());
                f(&mut h, d.throughput);
            }
            for mv in &tick.rebalances {
                h.write(&(mv.from as u64).to_le_bytes());
                h.write(&(mv.to as u64).to_le_bytes());
                h.write(&mv.job_id.to_le_bytes());
                h.write(&(mv.migrated_layers as u64).to_le_bytes());
                f(&mut h, mv.gain_tps);
            }
            h.write(&(tick.queue_depth as u64).to_le_bytes());
            for j in &tick.board_jobs {
                h.write(&(*j as u64).to_le_bytes());
            }
            h.write(&(tick.active_boards as u64).to_le_bytes());
            f(&mut h, tick.aggregate_tps);
        }
        f(&mut h, self.summary.mean_aggregate_tps);
        h.write(&(self.summary.lost_jobs as u64).to_le_bytes());
        h.write(&(self.summary.rebalance_moves as u64).to_le_bytes());
        h.finish()
    }
}

/// The orchestration control plane: a fleet built from a [`FleetSpec`],
/// the shared admission mempool ([`omniboost_serve::Mempool`]), and the
/// merged event loop over job events, fleet events and rebalance ticks.
///
/// Each [`OrchestratorSim::run`] rebuilds the fleet from the spec —
/// lifecycle events mutate fleet structure, so replays always start
/// from the scripted initial fleet (evaluation caches still persist
/// across *processes* via [`OrchestratorConfig::cache_path`]).
pub struct OrchestratorSim<M, F> {
    spec: FleetSpec,
    config: OrchestratorConfig,
    make_evaluator: F,
    /// Observability handle: propagated to the run's fleet (and through
    /// it to every board runtime). No-op by default; never consulted by
    /// any scheduling decision, so replay digests are unchanged by it.
    telemetry: Telemetry,
    _marker: std::marker::PhantomData<M>,
}

impl<M, F> OrchestratorSim<M, F>
where
    M: ThroughputModel + Send + Sync,
    F: FnMut(Board) -> M,
{
    /// Builds the control plane for a fleet spec. The factory receives
    /// each board (so board-calibrated evaluators fit naturally) and is
    /// re-invoked for every joined board.
    pub fn new(spec: FleetSpec, config: OrchestratorConfig, make_evaluator: F) -> Self {
        assert!(
            !spec.initial.is_empty(),
            "an orchestrated fleet needs at least one initial board"
        );
        Self {
            spec,
            config,
            make_evaluator,
            telemetry: Telemetry::noop(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Injects a telemetry handle. Chaos incidents (degrades, warm
    /// reboots, evictions, rejected rebalance proposals) land in its
    /// flight recorder, rebalance/evacuation phases open spans, and the
    /// chaos counters mirror into its registry. The next
    /// [`OrchestratorSim::run`] propagates the handle to every board
    /// runtime it builds.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The injected telemetry handle (no-op unless
    /// [`OrchestratorSim::set_telemetry`] was called).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    fn build_scheduler(&mut self, board: &Board) -> OnlineScheduler<M> {
        OnlineScheduler::new(
            (self.make_evaluator)(board.clone()),
            self.config.policy,
            self.config.online,
        )
    }

    /// Replays `trace` interleaved with `script` to completion.
    /// `horizon_ms` bounds the throughput/utilization time integrals.
    pub fn run(
        &mut self,
        trace: &ArrivalTrace,
        script: &FleetScript,
        horizon_ms: u64,
    ) -> OrchestratorReport {
        let mut fleet: Fleet<M> = {
            let boards: Vec<Board> = self.spec.initial.iter().map(|p| p.board.clone()).collect();
            let config = &self.config;
            let policy = config.placement;
            let use_memo = config.use_memo;
            // Work around the borrow of `self` inside the closure.
            let mut schedulers: Vec<OnlineScheduler<M>> = Vec::new();
            for board in &boards {
                schedulers.push(self.build_scheduler(board));
            }
            let mut iter = schedulers.into_iter();
            Fleet::new(boards, policy, use_memo, |_| {
                iter.next().expect("one scheduler per board")
            })
        };
        fleet.set_telemetry(self.telemetry.clone());
        let mut cache_preloaded = 0usize;
        if let Some(path) = self.config.cache_path.clone() {
            if path.exists() {
                if let Ok(archive) = CacheArchive::load(&path) {
                    cache_preloaded =
                        fleet.preload_caches(&archive, self.config.online.eval_cache_capacity);
                }
            }
        }

        let mut pool = Mempool::new(self.config.admission);
        // Evacuees waiting in the pool: job id → the failure stamp
        // their evacuation latency counts from.
        let mut evac_pending: Vec<(u64, u64)> = Vec::new();
        let mut evac_waits = LogHistogram::new();
        let (mut evacuated_jobs, mut evac_relocated, mut evac_queued) = (0usize, 0usize, 0usize);
        // Degraded slots' pre-brown-out hardware, for recovery. First
        // degrade of a slot captures the healthy board; stacked degrades
        // keep it; fail/drain forgets it (that board is gone for good).
        let mut original_boards: std::collections::HashMap<usize, Board> =
            std::collections::HashMap::new();
        // In-run cache archive feeding warm reboots: every lifecycle
        // event that tears a scheduler down (fail, drain, degrade,
        // recover) first archives the fleet's caches per profile, and
        // every board that comes up (join, degrade, recover) preloads
        // its profile's segment — so a flapped board reboots warm.
        let mut run_archive = CacheArchive::default();
        let cache_capacity = self.config.online.eval_cache_capacity;
        let (mut degrades, mut recovers) = (0usize, 0usize);
        let (mut warm_boots, mut warm_boot_entries) = (0usize, 0usize);
        let mut degrade_evictions = 0usize;
        let mut live: Vec<u64> = Vec::new();
        let mut tenant_acc = TenantAccumulator::new();
        let mut slo_acc = SloAccumulator::new();
        let rebalance = self.config.rebalance.clone();
        let cells_config = self.config.cells.clone();
        let mut driver = match &cells_config {
            Some(_) => RebalanceDriver::Sharded(ShardedRebalancer::new()),
            None => RebalanceDriver::Single(Rebalancer::new()),
        };
        let mut next_rebalance = rebalance.as_ref().map(|r| r.period_ms.max(1));
        let (mut reb_ticks, mut reb_rejected) = (0usize, 0usize);

        let mut ticks: Vec<OrchestratorTick> = Vec::new();
        let mut last_t = 0u64;
        let mut tps_integral = 0.0f64;
        let mut busy_ms: Vec<u64> = vec![0; fleet.len()];
        let mut peak_queue = 0usize;
        let (mut arrivals, mut departures, mut placements) = (0usize, 0usize, 0usize);
        let (mut failures, mut drains, mut joins) = (0usize, 0usize, 0usize);

        let job_events = trace.events();
        let fleet_events = script.events();
        let (mut ji, mut fi) = (0usize, 0usize);
        loop {
            // The next stamp across the three merged streams.
            let mut t = u64::MAX;
            if ji < job_events.len() {
                t = t.min(job_events[ji].at_ms);
            }
            if fi < fleet_events.len() {
                t = t.min(fleet_events[fi].at_ms);
            }
            if let Some(r) = next_rebalance {
                if r < horizon_ms {
                    t = t.min(r);
                }
            }
            if t == u64::MAX {
                break;
            }

            // Integrate the interval since the previous tick with the
            // still-current deployments.
            let dt = t - last_t;
            tps_integral += fleet.aggregate_throughput() * dt as f64;
            tenant_acc.integrate(fleet.slots(), dt);
            slo_acc.integrate(fleet.slots(), dt);
            busy_ms.resize(fleet.len(), 0);
            for (b, slot) in fleet.slots().iter().enumerate() {
                if !slot.jobs.is_empty() {
                    busy_ms[b] += dt;
                }
            }
            last_t = t;

            // TTL sweep first: an entry that outlived its TTL must not
            // grab capacity this tick frees. No-op without a TTL.
            let expired_ids = pool.expire(t);
            for id in &expired_ids {
                live.retain(|l| l != id);
                evac_pending.retain(|(e, _)| e != id);
            }

            let mut tick_fleet_events = Vec::new();
            let mut tick_events = Vec::new();
            let mut placed = Vec::new();
            let mut queued_ids = Vec::new();
            let mut rejected_ids = Vec::new();
            let mut capacity_freed = false;
            // Slots degraded this tick — the targeted-rebalance donors
            // of step 4½.
            let mut degraded_this_tick: Vec<usize> = Vec::new();

            // 1. Fleet-lifecycle events (before job events: a board
            //    failing at `t` never receives the arrival stamped `t`).
            while fi < fleet_events.len() && fleet_events[fi].at_ms == t {
                let event = fleet_events[fi].event;
                fi += 1;
                let record = match event {
                    FleetEvent::BoardFail { board } | FleetEvent::BoardDrain { board } => {
                        let alive = board < fleet.len() && fleet.slots()[board].active;
                        if !alive {
                            FleetEventRecord {
                                event,
                                slot: None,
                                evacuated: Vec::new(),
                                relocated: 0,
                                queued: 0,
                            }
                        } else {
                            let _span = self.telemetry.span("orchestrator.evacuate");
                            if matches!(event, FleetEvent::BoardFail { .. }) {
                                failures += 1;
                            } else {
                                drains += 1;
                            }
                            // The board is gone for good: forget any
                            // pre-degrade original, but archive its
                            // caches first — a flap's rejoin (same
                            // profile) warm-boots from this segment.
                            original_boards.remove(&board);
                            fleet.archive_caches(&mut run_archive, cache_capacity);
                            // Evacuate: every resident job re-enters the
                            // admission-gated placement path; what no
                            // longer fits anywhere queues. Nothing is
                            // ever dropped.
                            let mut evacuees = fleet.deactivate(board);
                            order_evacuees(self.config.evac_order, &tenant_acc, &mut evacuees);
                            evacuated_jobs += evacuees.len();
                            let (ids, relocated, to_queue) = requeue_evacuees(
                                evacuees,
                                &mut pool,
                                &mut fleet,
                                t,
                                &mut placements,
                                &mut placed,
                                &mut queued_ids,
                                &mut tenant_acc,
                                &mut evac_pending,
                                &mut evac_waits,
                            );
                            evac_relocated += relocated;
                            evac_queued += to_queue;
                            self.telemetry
                                .incr("orchestrator.evacuated_jobs", ids.len() as u64);
                            if self.telemetry.is_recording() {
                                let kind = if matches!(event, FleetEvent::BoardFail { .. }) {
                                    "orchestrator.board_fail"
                                } else {
                                    "orchestrator.board_drain"
                                };
                                self.telemetry.event(
                                    kind,
                                    format!(
                                        "t_ms={t} board={board} evacuated={} \
                                         relocated={relocated} queued={to_queue}",
                                        ids.len()
                                    ),
                                );
                            }
                            FleetEventRecord {
                                event,
                                slot: Some(board),
                                evacuated: ids,
                                relocated,
                                queued: to_queue,
                            }
                        }
                    }
                    FleetEvent::BoardDegrade { board, profile } => {
                        let alive = board < fleet.len() && fleet.slots()[board].active;
                        let pool_len = self.spec.degrade_profiles.len();
                        if !alive || pool_len == 0 {
                            FleetEventRecord {
                                event,
                                slot: None,
                                evacuated: Vec::new(),
                                relocated: 0,
                                queued: 0,
                            }
                        } else {
                            let _span = self.telemetry.span("orchestrator.chaos.degrade");
                            degrades += 1;
                            self.telemetry.incr("orchestrator.degrades", 1);
                            let p = self.spec.degrade_profiles[profile % pool_len].clone();
                            // First degrade of this slot captures the
                            // healthy hardware for a later recovery.
                            original_boards
                                .entry(board)
                                .or_insert_with(|| fleet.slots()[board].board.clone());
                            // Archive the healthy profile's caches (a
                            // recovery warm-boots from them), then swap
                            // the weakened board in place.
                            fleet.archive_caches(&mut run_archive, cache_capacity);
                            let scheduler = self.build_scheduler(&p.board);
                            let mut evicted = if self.config.degrade_evacuates_all {
                                // A/B arm: evacuate everyone; the swap
                                // then finds an empty slot.
                                let mut all = fleet.evacuate_jobs(board);
                                all.extend(fleet.swap_board(board, p.board.clone(), scheduler));
                                all
                            } else {
                                // Degrade in place: only what the
                                // weakened profile no longer admits.
                                fleet.swap_board(board, p.board.clone(), scheduler)
                            };
                            let preloaded =
                                preload_slot(&mut fleet, board, &run_archive, cache_capacity);
                            if preloaded > 0 {
                                warm_boots += 1;
                                warm_boot_entries += preloaded;
                                self.telemetry.incr("orchestrator.warm_boots", 1);
                                self.telemetry
                                    .incr("orchestrator.warm_boot_entries", preloaded as u64);
                                if self.telemetry.is_recording() {
                                    self.telemetry.event(
                                        "orchestrator.warm_boot",
                                        format!("t_ms={t} board={board} entries={preloaded}"),
                                    );
                                }
                            }
                            degrade_evictions += evicted.len();
                            self.telemetry
                                .incr("orchestrator.degrade_evictions", evicted.len() as u64);
                            self.telemetry
                                .incr("orchestrator.evacuated_jobs", evicted.len() as u64);
                            if self.telemetry.is_recording() {
                                self.telemetry.event(
                                    "orchestrator.board_degrade",
                                    format!(
                                        "t_ms={t} board={board} evicted={} warm_entries={preloaded}",
                                        evicted.len()
                                    ),
                                );
                            }
                            evacuated_jobs += evicted.len();
                            order_evacuees(self.config.evac_order, &tenant_acc, &mut evicted);
                            let (ids, relocated, to_queue) = requeue_evacuees(
                                evicted,
                                &mut pool,
                                &mut fleet,
                                t,
                                &mut placements,
                                &mut placed,
                                &mut queued_ids,
                                &mut tenant_acc,
                                &mut evac_pending,
                                &mut evac_waits,
                            );
                            evac_relocated += relocated;
                            evac_queued += to_queue;
                            degraded_this_tick.push(board);
                            FleetEventRecord {
                                event,
                                slot: Some(board),
                                evacuated: ids,
                                relocated,
                                queued: to_queue,
                            }
                        }
                    }
                    FleetEvent::BoardRecover { board } => {
                        let alive = board < fleet.len() && fleet.slots()[board].active;
                        let original = if alive {
                            original_boards.remove(&board)
                        } else {
                            None
                        };
                        match original {
                            Some(orig) => {
                                let _span = self.telemetry.span("orchestrator.chaos.recover");
                                recovers += 1;
                                self.telemetry.incr("orchestrator.recovers", 1);
                                // Archive the degraded profile's caches
                                // (the next brown-out to the same
                                // profile warm-boots), restore the
                                // healthy hardware, preload its segment.
                                fleet.archive_caches(&mut run_archive, cache_capacity);
                                let scheduler = self.build_scheduler(&orig);
                                let mut evicted = fleet.swap_board(board, orig, scheduler);
                                let preloaded =
                                    preload_slot(&mut fleet, board, &run_archive, cache_capacity);
                                if preloaded > 0 {
                                    warm_boots += 1;
                                    warm_boot_entries += preloaded;
                                    self.telemetry.incr("orchestrator.warm_boots", 1);
                                    self.telemetry
                                        .incr("orchestrator.warm_boot_entries", preloaded as u64);
                                    if self.telemetry.is_recording() {
                                        self.telemetry.event(
                                            "orchestrator.warm_boot",
                                            format!("t_ms={t} board={board} entries={preloaded}"),
                                        );
                                    }
                                }
                                if self.telemetry.is_recording() {
                                    self.telemetry.event(
                                        "orchestrator.board_recover",
                                        format!(
                                            "t_ms={t} board={board} evicted={} \
                                             warm_entries={preloaded}",
                                            evicted.len()
                                        ),
                                    );
                                }
                                // Restored capacity: waiting jobs may
                                // fit again. (Eviction on recovery only
                                // happens when a misconfigured degrade
                                // pool is *stronger* than the original
                                // board; jobs still conserve.)
                                evacuated_jobs += evicted.len();
                                self.telemetry
                                    .incr("orchestrator.evacuated_jobs", evicted.len() as u64);
                                order_evacuees(self.config.evac_order, &tenant_acc, &mut evicted);
                                let (ids, relocated, to_queue) = requeue_evacuees(
                                    evicted,
                                    &mut pool,
                                    &mut fleet,
                                    t,
                                    &mut placements,
                                    &mut placed,
                                    &mut queued_ids,
                                    &mut tenant_acc,
                                    &mut evac_pending,
                                    &mut evac_waits,
                                );
                                evac_relocated += relocated;
                                evac_queued += to_queue;
                                capacity_freed = true;
                                FleetEventRecord {
                                    event,
                                    slot: Some(board),
                                    evacuated: ids,
                                    relocated,
                                    queued: to_queue,
                                }
                            }
                            None => FleetEventRecord {
                                event,
                                slot: None,
                                evacuated: Vec::new(),
                                relocated: 0,
                                queued: 0,
                            },
                        }
                    }
                    FleetEvent::BoardJoin { profile } => {
                        // Profile indices wrap around the spec's pool: a
                        // script generated against a larger pool must
                        // still add a board, or every later scripted
                        // board index would silently target the wrong
                        // slot (the generator tracks joins in its alive
                        // set). Only an empty pool makes joins no-ops.
                        match self
                            .spec
                            .join_profiles
                            .get(profile % self.spec.join_profiles.len().max(1))
                            .cloned()
                        {
                            Some(p) => {
                                joins += 1;
                                let scheduler = self.build_scheduler(&p.board);
                                let index = fleet.add_board(p.board, scheduler);
                                busy_ms.resize(fleet.len(), 0);
                                // A flap rejoining with a profile the
                                // run has seen before warm-boots from
                                // the archived cache segment instead of
                                // re-deriving every mapping cold.
                                let preloaded =
                                    preload_slot(&mut fleet, index, &run_archive, cache_capacity);
                                if preloaded > 0 {
                                    warm_boots += 1;
                                    warm_boot_entries += preloaded;
                                    self.telemetry.incr("orchestrator.warm_boots", 1);
                                    self.telemetry
                                        .incr("orchestrator.warm_boot_entries", preloaded as u64);
                                    if self.telemetry.is_recording() {
                                        self.telemetry.event(
                                            "orchestrator.warm_boot",
                                            format!("t_ms={t} board={index} entries={preloaded}"),
                                        );
                                    }
                                }
                                if self.telemetry.is_recording() {
                                    self.telemetry.event(
                                        "orchestrator.board_join",
                                        format!("t_ms={t} board={index} warm_entries={preloaded}"),
                                    );
                                }
                                // Fresh capacity: waiting jobs may fit.
                                capacity_freed = true;
                                FleetEventRecord {
                                    event,
                                    slot: Some(index),
                                    evacuated: Vec::new(),
                                    relocated: 0,
                                    queued: 0,
                                }
                            }
                            None => FleetEventRecord {
                                event,
                                slot: None,
                                evacuated: Vec::new(),
                                relocated: 0,
                                queued: 0,
                            },
                        }
                    }
                };
                tick_fleet_events.push(record);
            }

            // 2. Job events (the trace orders departures before arrivals
            //    at equal stamps).
            while ji < job_events.len() && job_events[ji].at_ms == t {
                let event = job_events[ji].event;
                ji += 1;
                tick_events.push(event);
                match event {
                    JobEvent::Arrive(job) => {
                        arrivals += 1;
                        tenant_acc.arrival(&job);
                        slo_acc.arrival(&job);
                        match pool.submit(&mut fleet, job, t) {
                            SubmitOutcome::Placed(board) => {
                                live.push(job.id);
                                placements += 1;
                                placed.push((job.id, board));
                                tenant_acc.placement(&job, 0);
                            }
                            SubmitOutcome::Queued => {
                                live.push(job.id);
                                queued_ids.push(job.id);
                            }
                            // Rejected jobs never enter the system, so
                            // they are excluded from the conservation
                            // audit's live set (accounted, not lost).
                            SubmitOutcome::Rejected(_) => rejected_ids.push(job.id),
                        }
                    }
                    JobEvent::Depart { job_id } => {
                        departures += 1;
                        live.retain(|id| *id != job_id);
                        if pool.depart(job_id) {
                            evac_pending.retain(|(id, _)| *id != job_id);
                        } else if let Some(board) = fleet.board_of(job_id) {
                            fleet.remove_job(board, job_id);
                            capacity_freed = true;
                        }
                    }
                }
            }

            // 3. Queue drain whenever capacity grew (departure or join).
            if capacity_freed && !pool.is_empty() {
                let drained = pool.drain(&mut fleet, t, &tenant_acc);
                absorb_drained(
                    drained,
                    t,
                    &mut placements,
                    &mut placed,
                    &mut tenant_acc,
                    &mut evac_pending,
                    &mut evac_waits,
                );
            }
            peak_queue = peak_queue.max(pool.len());

            // 4. Reschedule dirty boards.
            let mut decisions = fleet.flush_dirty();

            // 4½. Targeted relief for boards degraded this tick: jobs
            //     that stayed resident through the swap re-priced on the
            //     weaker profile; a migration happens only when its
            //     priced gain clears the same bar the periodic
            //     rebalancer enforces (`min_gain_per_layer`), so a mild
            //     brown-out degrades in place instead of stampeding.
            let mut tick_moves: Vec<RebalanceMove> = Vec::new();
            if !degraded_this_tick.is_empty() {
                if let Some(config) = rebalance.as_ref() {
                    let _span = self.telemetry.span("orchestrator.rebalance.relief");
                    for &donor in &degraded_this_tick {
                        let slot = &fleet.slots()[donor];
                        if !slot.active || slot.jobs.is_empty() {
                            continue;
                        }
                        let donors = vec![(donor, slot.load_score())];
                        let receivers = fleet.least_loaded(config.top_k_boards, &[donor]);
                        let out = balance_slice(fleet.slots_mut(), &donors, &receivers, config, t);
                        for mv in &out.moves {
                            fleet.reindex(mv.from);
                            fleet.reindex(mv.to);
                        }
                        reb_rejected += out.rejected;
                        self.telemetry
                            .incr("orchestrator.rebalance_rejected", out.rejected as u64);
                        tick_moves.extend(out.moves);
                    }
                }
            }

            // 5. Periodic rebalance — priced against the fresh
            //    deployments, after the tick's events settled.
            if next_rebalance == Some(t) {
                let config = rebalance.as_ref().expect("rebalance scheduled");
                reb_ticks += 1;
                let span = self.telemetry.span("orchestrator.rebalance");
                let outcome = match &mut driver {
                    RebalanceDriver::Single(r) => r.tick(&mut fleet, config, t),
                    RebalanceDriver::Sharded(s) => {
                        let cells = cells_config.as_ref().expect("sharded driver has cells");
                        s.tick(&mut fleet, config, cells, t)
                    }
                };
                drop(span);
                reb_rejected += outcome.rejected;
                if outcome.rejected > 0 {
                    self.telemetry
                        .incr("orchestrator.rebalance_rejected", outcome.rejected as u64);
                    if self.telemetry.is_recording() {
                        self.telemetry.event(
                            "orchestrator.rebalance_rejected",
                            format!(
                                "t_ms={t} rejected={} accepted={}",
                                outcome.rejected,
                                outcome.moves.len()
                            ),
                        );
                    }
                }
                let accepted = !outcome.moves.is_empty();
                tick_moves.extend(outcome.moves);
                next_rebalance = Some(t + config.period_ms.max(1));
                // A move can free admission headroom on the donor; let
                // waiting jobs use it now rather than next departure.
                if accepted && !pool.is_empty() {
                    let drained = pool.drain(&mut fleet, t, &tenant_acc);
                    absorb_drained(
                        drained,
                        t,
                        &mut placements,
                        &mut placed,
                        &mut tenant_acc,
                        &mut evac_pending,
                        &mut evac_waits,
                    );
                    decisions.extend(fleet.flush_dirty());
                    peak_queue = peak_queue.max(pool.len());
                }
            }

            ticks.push(OrchestratorTick {
                at_ms: t,
                fleet_events: tick_fleet_events,
                events: tick_events,
                placements: placed,
                queued: queued_ids,
                rejected: rejected_ids,
                expired: expired_ids,
                decisions,
                rebalances: tick_moves,
                queue_depth: pool.len(),
                board_jobs: fleet.board_jobs(),
                active_boards: fleet.active_boards(),
                aggregate_tps: fleet.aggregate_throughput(),
            });
        }

        // Tail: integrate from the last event to the horizon.
        if horizon_ms > last_t {
            let dt = horizon_ms - last_t;
            tps_integral += fleet.aggregate_throughput() * dt as f64;
            tenant_acc.integrate(fleet.slots(), dt);
            slo_acc.integrate(fleet.slots(), dt);
            busy_ms.resize(fleet.len(), 0);
            for (b, slot) in fleet.slots().iter().enumerate() {
                if !slot.jobs.is_empty() {
                    busy_ms[b] += dt;
                }
            }
        }

        if let Some(path) = self.config.cache_path.clone() {
            let capacity = self.config.online.eval_cache_capacity;
            if capacity > 0 {
                let mut archive = CacheArchive::load(&path).unwrap_or_default();
                fleet.archive_caches(&mut archive, capacity);
                let _ = archive.save(&path);
            }
        }

        // Conservation audit: every live (arrived, undeparted) job must
        // be resident or queued. `lost_jobs` is the shortfall — zero by
        // construction, proptested to stay zero.
        let resident: usize = fleet.slots().iter().map(|s| s.jobs.len()).sum();
        let lost_jobs = live.len().saturating_sub(resident + pool.len());
        // Mirror the run's chaos tallies into the registry so a scrape
        // sees them even when every increment-site counter stayed 0.
        self.telemetry
            .incr("orchestrator.lost_jobs", lost_jobs as u64);
        self.telemetry.incr("orchestrator.warm_boots", 0);
        self.telemetry.incr("orchestrator.warm_boot_entries", 0);
        self.telemetry.incr("orchestrator.evacuated_jobs", 0);

        let all: Vec<&BoardDecision> = ticks.iter().flat_map(|t| t.decisions.iter()).collect();
        let moves: Vec<&RebalanceMove> = ticks.iter().flat_map(|t| t.rebalances.iter()).collect();
        let eval_cache = fleet
            .slots()
            .iter()
            .map(|s| s.scheduler.eval_cache().stats())
            .fold(EvalCacheStats::default(), EvalCacheStats::merge);
        let horizon = horizon_ms.max(last_t).max(1);
        let still_queued: Vec<JobSpec> = pool.queued_jobs();
        let pool_stats = pool.stats();
        let place_hist = pool.take_place_histogram();
        let mut decision_hist = LogHistogram::new();
        for d in &all {
            decision_hist.record(d.decision_ms);
        }
        let summary = OrchestratorSummary {
            events: trace.len(),
            arrivals,
            departures,
            placements,
            board_failures: failures,
            board_drains: drains,
            board_joins: joins,
            evacuated_jobs,
            evacuees_relocated_same_tick: evac_relocated,
            evacuees_queued: evac_queued,
            evacuation_wait: LatencyStats::from_histogram(&evac_waits),
            evacuees_still_queued: evac_pending.len(),
            lost_jobs,
            rebalance_ticks: reb_ticks,
            rebalance_moves: moves.len(),
            rebalance_rejected: reb_rejected,
            rebalance_gain_tps: moves.iter().map(|m| m.gain_tps).sum(),
            rebalance_migrated_layers: moves.iter().map(|m| m.migrated_layers).sum(),
            decisions: all.len(),
            decision: LatencyStats::from_histogram(&decision_hist),
            placement: LatencyStats::from_histogram(&place_hist),
            migrated_layers: all.iter().map(|d| d.migrated_layers).sum(),
            peak_queue_depth: peak_queue,
            left_in_queue: pool.len(),
            rejected: pool_stats.rejected,
            expired: pool_stats.expired,
            slo: slo_acc.finish(),
            mean_aggregate_tps: tps_integral / horizon as f64,
            board_utilization: busy_ms
                .iter()
                .map(|ms| *ms as f64 / horizon as f64)
                .collect(),
            tenants: tenant_acc.finish(horizon, &still_queued),
            eval_cache,
            cache_preloaded_entries: cache_preloaded,
            board_degrades: degrades,
            board_recovers: recovers,
            warm_boots,
            warm_boot_entries,
            degrade_evictions,
        };
        OrchestratorReport { ticks, summary }
    }
}

/// Which rebalancing driver a run uses: the single whole-fleet
/// rebalancer (reads the load index for donors/receivers) or the
/// sharded-cell driver.
enum RebalanceDriver {
    Single(Rebalancer),
    Sharded(ShardedRebalancer),
}

/// Folds one [`Mempool::drain`]'s placements into the tick's records:
/// placement counters, tenant queue waits, and evacuation latencies for
/// drained jobs that were evacuees.
fn absorb_drained(
    drained: Vec<omniboost_serve::Drained>,
    t: u64,
    placements: &mut usize,
    placed: &mut Vec<(u64, usize)>,
    tenant_acc: &mut TenantAccumulator,
    evac_pending: &mut Vec<(u64, u64)>,
    evac_waits: &mut LogHistogram,
) {
    for d in drained {
        *placements += 1;
        placed.push((d.job.id, d.board));
        tenant_acc.placement(&d.job, t - d.queued_at);
        if let Some(p) = evac_pending.iter().position(|(id, _)| *id == d.job.id) {
            let (_, failed_at) = evac_pending.remove(p);
            evac_waits.record((t - failed_at) as f64);
        }
    }
}

/// Sorts evacuees into the configured re-placement order. All three
/// orders are fully deterministic (final tiebreak on job id).
fn order_evacuees(order: EvacOrder, tenant_acc: &TenantAccumulator, evacuees: &mut [JobSpec]) {
    match order {
        EvacOrder::Arrival => {}
        EvacOrder::HeaviestFirst => evacuees.sort_by(|a, b| {
            zoo::total_flops(b.model)
                .cmp(&zoo::total_flops(a.model))
                .then(a.id.cmp(&b.id))
        }),
        EvacOrder::TenantDeficitFirst => evacuees.sort_by(|a, b| {
            tenant_acc
                .attained_integral(a.tenant)
                .total_cmp(&tenant_acc.attained_integral(b.tenant))
                .then(
                    zoo::total_flops(b.model)
                        .cmp(&zoo::total_flops(a.model))
                        .then(a.id.cmp(&b.id)),
                )
        }),
    }
}

/// Re-places a batch of evacuees through the admission-gated mempool
/// path (evacuees bypass validation and quota: an admitted job is
/// never bounced). Returns the evacuee ids plus how many relocated
/// same-tick and how many queued.
#[allow(clippy::too_many_arguments)]
fn requeue_evacuees<M: ThroughputModel + Send + Sync>(
    evacuees: Vec<JobSpec>,
    pool: &mut Mempool,
    fleet: &mut Fleet<M>,
    t: u64,
    placements: &mut usize,
    placed: &mut Vec<(u64, usize)>,
    queued_ids: &mut Vec<u64>,
    tenant_acc: &mut TenantAccumulator,
    evac_pending: &mut Vec<(u64, u64)>,
    evac_waits: &mut LogHistogram,
) -> (Vec<u64>, usize, usize) {
    let ids: Vec<u64> = evacuees.iter().map(|j| j.id).collect();
    let (mut relocated, mut to_queue) = (0usize, 0usize);
    for job in evacuees {
        match pool.requeue(fleet, job, t) {
            SubmitOutcome::Placed(slot) => {
                relocated += 1;
                *placements += 1;
                placed.push((job.id, slot));
                tenant_acc.placement(&job, 0);
                evac_waits.record(0.0);
            }
            _ => {
                to_queue += 1;
                queued_ids.push(job.id);
                evac_pending.push((job.id, t));
            }
        }
    }
    (ids, relocated, to_queue)
}

/// Warm-loads one slot's scheduler from the archive segment matching
/// its (possibly just-swapped) hardware profile; returns the number of
/// preloaded cache entries (0 when the profile has no segment yet).
fn preload_slot<M: ThroughputModel + Send + Sync>(
    fleet: &mut Fleet<M>,
    index: usize,
    archive: &CacheArchive,
    capacity: usize,
) -> usize {
    match archive.segment(capacity, &fleet.slots()[index].board) {
        Some(cache) => {
            let entries = cache.cache().len();
            fleet.slots_mut()[index].scheduler.preload_cache(cache);
            entries
        }
        None => 0,
    }
}
