//! Sharded-cell rebalancing: partition the fleet into fixed-size cells
//! rebalanced independently (and, on multi-core hosts, concurrently via
//! `rayon`), plus a cheap top-level balancer that moves a job across
//! cells only when inter-cell imbalance clears a hysteresis bar.
//!
//! Determinism is structural, not locked: cells are fixed contiguous
//! chunks of the stable slot vector, per-cell [`Rebalancer`] state lives
//! in cell order, cell results are merged in cell order (the rayon shim
//! preserves input order), and the cross-cell pass runs sequentially
//! after the merge — so a seeded run replays bit-for-bit regardless of
//! how many worker threads executed the cells.

use crate::rebalance::{balance_slice, RebalanceConfig, RebalanceTick, Rebalancer};
use omniboost_hw::ThroughputModel;
use omniboost_serve::{BoardSlot, Fleet};
use rayon::prelude::*;

/// Knobs of the sharded-cell driver.
#[derive(Debug, Clone, PartialEq)]
pub struct CellConfig {
    /// Boards per cell (the last cell takes the remainder). Slots are
    /// assigned by index, so a board stays in its cell for life.
    pub cell_size: usize,
    /// Minimum *relative* gap between the hottest and coldest cell's
    /// mean load before the cross-cell balancer proposes anything: the
    /// coldest cell's mean must sit below `(1 - cross_min_imbalance)`
    /// of the hottest cell's.
    pub cross_min_imbalance: f64,
    /// Cross-cell proposals skipped after an accepted cross-cell move.
    pub cross_cooldown_periods: u32,
}

impl Default for CellConfig {
    fn default() -> Self {
        Self {
            cell_size: 16,
            cross_min_imbalance: 0.25,
            cross_cooldown_periods: 1,
        }
    }
}

/// The sharded driver: one [`Rebalancer`] (cooldown state) per cell,
/// plus the cross-cell balancer's own cooldown.
#[derive(Debug, Default)]
pub struct ShardedRebalancer {
    cells: Vec<Rebalancer>,
    cross_cooldown: u32,
}

impl ShardedRebalancer {
    /// A fresh driver; cells materialize lazily as the fleet grows.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs one sharded rebalance tick: every cell independently (jobs
    /// only move within their cell), then at most one cross-cell move
    /// when the inter-cell imbalance bar clears. All dirty boards must
    /// be flushed first. Moves are merged in cell order; the returned
    /// tick's `cooled_down` is set only when *every* cell was cooling.
    pub fn tick<M: ThroughputModel + Send + Sync>(
        &mut self,
        fleet: &mut Fleet<M>,
        config: &RebalanceConfig,
        cells: &CellConfig,
        at_ms: u64,
    ) -> RebalanceTick {
        let cell_size = cells.cell_size.max(1);
        let n_cells = fleet.len().div_ceil(cell_size).max(1);
        while self.cells.len() < n_cells {
            self.cells.push(Rebalancer::new());
        }
        let cell_ticks: Vec<RebalanceTick> = {
            let mut pairs: Vec<(&mut Rebalancer, &mut [BoardSlot<M>])> = self
                .cells
                .iter_mut()
                .zip(fleet.slots_mut().chunks_mut(cell_size))
                .collect();
            pairs
                .par_iter_mut()
                .map(|pair| {
                    let (state, cell) = pair;
                    state.tick_cell(cell, config, at_ms)
                })
                .collect()
        };
        let mut out = RebalanceTick {
            cooled_down: cell_ticks.iter().all(|t| t.cooled_down),
            ..Default::default()
        };
        for tick in cell_ticks {
            out.rejected += tick.rejected;
            out.moves.extend(tick.moves);
        }
        for (from, to) in out.moves.iter().map(|m| (m.from, m.to)).collect::<Vec<_>>() {
            fleet.reindex(from);
            fleet.reindex(to);
        }
        // Cross-cell pass: sequential and last, so it sees the settled
        // per-cell outcome and the merge order never depends on thread
        // scheduling.
        if self.cross_cooldown > 0 {
            self.cross_cooldown -= 1;
            return out;
        }
        let mut hot: Option<(usize, f64)> = None;
        let mut cold: Option<(usize, f64)> = None;
        for (ci, cell) in fleet.slots().chunks(cell_size).enumerate() {
            let loads: Vec<f64> = cell
                .iter()
                .filter(|s| s.active)
                .map(|s| s.load_score())
                .collect();
            if loads.is_empty() {
                continue;
            }
            let mean = loads.iter().sum::<f64>() / loads.len() as f64;
            if hot.is_none_or(|(_, m)| mean > m) {
                hot = Some((ci, mean));
            }
            if cold.is_none_or(|(_, m)| mean < m) {
                cold = Some((ci, mean));
            }
        }
        let (Some((hot_ci, hot_mean)), Some((cold_ci, cold_mean))) = (hot, cold) else {
            return out;
        };
        if hot_ci == cold_ci || cold_mean > hot_mean * (1.0 - cells.cross_min_imbalance) {
            return out;
        }
        let in_cell = |ci: usize, index: usize| index / cell_size == ci;
        let donor = fleet
            .slots()
            .iter()
            .filter(|s| s.active && !s.jobs.is_empty() && in_cell(hot_ci, s.index))
            .map(|s| (s.index, s.load_score()))
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)));
        let receiver = fleet
            .slots()
            .iter()
            .filter(|s| s.active && in_cell(cold_ci, s.index))
            .map(|s| (s.index, s.load_score()))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let (Some(donor), Some(receiver)) = (donor, receiver) else {
            return out;
        };
        let single = RebalanceConfig {
            max_moves_per_tick: 1,
            ..config.clone()
        };
        let cross = balance_slice(fleet.slots_mut(), &[donor], &[receiver], &single, at_ms);
        for mv in &cross.moves {
            fleet.reindex(mv.from);
            fleet.reindex(mv.to);
        }
        if !cross.moves.is_empty() {
            self.cross_cooldown = cells.cross_cooldown_periods;
            out.cooled_down = false;
        }
        out.rejected += cross.rejected;
        out.moves.extend(cross.moves);
        out
    }
}
