//! Fleet composition: named board profiles and the spec an orchestrated
//! fleet is built from.

use omniboost_hw::Board;

/// A named hardware profile — one *kind* of board a fleet runs.
///
/// The name is for reports and examples; identity (cache segments,
/// placement scoring) always keys on [`Board::fingerprint`].
#[derive(Debug, Clone, PartialEq)]
pub struct BoardProfile {
    /// Human-readable profile name (e.g. `"hikey970"`, `"hikey970-lite"`).
    pub name: String,
    /// The hardware description.
    pub board: Board,
}

impl BoardProfile {
    /// Creates a named profile.
    pub fn new(name: impl Into<String>, board: Board) -> Self {
        Self {
            name: name.into(),
            board,
        }
    }

    /// The full-spec HiKey970 profile.
    pub fn hikey970() -> Self {
        Self::new("hikey970", Board::hikey970())
    }

    /// The degraded HiKey970 profile ([`Board::hikey970_lite`]).
    pub fn hikey970_lite() -> Self {
        Self::new("hikey970-lite", Board::hikey970_lite())
    }

    /// The GPU-masked HiKey970 profile ([`Board::hikey970_gpu_down`]) —
    /// the brown-out target of
    /// [`omniboost_models::FleetEvent::BoardDegrade`] events: same
    /// chassis, Mali disabled, tighter concurrency cap.
    pub fn hikey970_gpu_down() -> Self {
        Self::new("hikey970-gpu-down", Board::hikey970_gpu_down())
    }
}

/// What a fleet is made of: the boards alive at t = 0 and the profile
/// pool that [`omniboost_models::FleetEvent::BoardJoin`] events draw
/// from (the event carries a pool *index* because the trace layer
/// cannot see hardware types).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Boards alive at trace start, in slot-index order.
    pub initial: Vec<BoardProfile>,
    /// Profiles joined boards are built from; an empty pool makes join
    /// events no-ops.
    pub join_profiles: Vec<BoardProfile>,
    /// Weakened profiles [`omniboost_models::FleetEvent::BoardDegrade`]
    /// events swap a board to **in place** (the event carries a pool
    /// index, resolved modulo this pool like joins). An empty pool makes
    /// degrade events no-ops. The constructors default to the two
    /// brown-out modes of the reproduction: the binned-silicon
    /// [`BoardProfile::hikey970_lite`] and the device-masked
    /// [`BoardProfile::hikey970_gpu_down`].
    pub degrade_profiles: Vec<BoardProfile>,
}

/// The default brown-out pool: a clocked-down chassis and a GPU-masked
/// one.
fn default_degrade_profiles() -> Vec<BoardProfile> {
    vec![
        BoardProfile::hikey970_lite(),
        BoardProfile::hikey970_gpu_down(),
    ]
}

impl FleetSpec {
    /// `n` identical boards, joins reusing the same profile.
    pub fn homogeneous(n: usize, profile: BoardProfile) -> Self {
        Self {
            initial: vec![profile.clone(); n],
            join_profiles: vec![profile],
            degrade_profiles: default_degrade_profiles(),
        }
    }

    /// An explicit heterogeneous fleet; joins draw from the same set of
    /// distinct profiles that appear in the initial fleet.
    pub fn heterogeneous(initial: Vec<BoardProfile>) -> Self {
        let mut join_profiles: Vec<BoardProfile> = Vec::new();
        for p in &initial {
            if !join_profiles
                .iter()
                .any(|q| q.board.fingerprint() == p.board.fingerprint())
            {
                join_profiles.push(p.clone());
            }
        }
        Self {
            initial,
            join_profiles,
            degrade_profiles: default_degrade_profiles(),
        }
    }

    /// Replaces the brown-out profile pool (empty disables degrade
    /// events).
    pub fn with_degrade_profiles(mut self, degrade_profiles: Vec<BoardProfile>) -> Self {
        self.degrade_profiles = degrade_profiles;
        self
    }

    /// Number of boards alive at t = 0.
    pub fn initial_boards(&self) -> usize {
        self.initial.len()
    }
}
