//! Workspace umbrella crate for the OmniBoost (DAC 2023) reproduction.
//!
//! This crate exists so that the repository-level `examples/` and
//! `tests/` directories can exercise the whole stack through a single
//! dependency; the real public API lives in [`omniboost`] and the
//! substrate crates it re-exports.

#![forbid(unsafe_code)]

pub use omniboost;
pub use omniboost_baselines;
pub use omniboost_estimator;
pub use omniboost_hw;
pub use omniboost_mcts;
pub use omniboost_models;
pub use omniboost_serve;
pub use omniboost_tensor;
